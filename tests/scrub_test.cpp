// Tests for parity scrubbing: detection and repair of silent in-memory
// corruption of parity stripes.

#include <gtest/gtest.h>

#include <map>

#include "core/recovery.hpp"
#include "core/scrub.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

WorkloadFactory idle_factory() {
  return [](vm::VmId) -> std::unique_ptr<vm::Workload> {
    return std::make_unique<vm::IdleWorkload>();
  };
}

struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(5)};
  DvdcState state;
  std::unique_ptr<DvdcCoordinator> coord;
  std::unique_ptr<ParityScrubber> scrubber;
  std::optional<PlacedPlan> placed;

  Rig(std::uint32_t nodes = 4, std::uint32_t vms = 2,
      ParityScheme scheme = ParityScheme::Raid5, std::uint32_t k = 0) {
    for (std::uint32_t n = 0; n < nodes; ++n) cluster.add_node();
    for (std::uint32_t n = 0; n < nodes; ++n)
      for (std::uint32_t v = 0; v < vms; ++v)
        cluster.boot_vm(n, kib(1), 16, std::make_unique<vm::IdleWorkload>());
    ProtocolConfig pc;
    pc.scheme = scheme;
    coord = std::make_unique<DvdcCoordinator>(sim, cluster, state, pc);
    scrubber = std::make_unique<ParityScrubber>(sim, cluster, state);
    PlannerConfig planner;
    planner.group_size = k != 0 ? k : nodes - 1;
    placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster), cluster,
                              scheme);
  }

  void checkpoint(checkpoint::Epoch e) {
    bool done = false;
    coord->run_epoch(*placed, e, [&](const EpochStats&) { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }

  ScrubReport scrub(bool repair) {
    std::optional<ScrubReport> report;
    scrubber->scrub(*placed, repair,
                    [&](const ScrubReport& r) { report = r; });
    sim.run();
    EXPECT_TRUE(report.has_value());
    return *report;
  }
};

TEST(Scrub, CleanStripesPass) {
  Rig rig;
  rig.checkpoint(1);
  const auto report = rig.scrub(false);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.groups_checked, rig.placed->plan.groups.size());
  EXPECT_GT(report.bytes_verified, 0u);
  EXPECT_GT(report.bytes_streamed, 0u);
  EXPECT_GT(report.duration, 0.0);
}

TEST(Scrub, NothingToCheckBeforeFirstEpoch) {
  Rig rig;
  const auto report = rig.scrub(false);
  EXPECT_EQ(report.groups_checked, 0u);
  EXPECT_TRUE(report.clean());
}

TEST(Scrub, DetectsInjectedCorruption) {
  Rig rig;
  rig.checkpoint(1);
  ASSERT_TRUE(rig.scrubber->inject_corruption(0, 0, 7));
  const auto report = rig.scrub(false);
  ASSERT_EQ(report.mismatched.size(), 1u);
  EXPECT_EQ(report.mismatched[0], 0u);
  EXPECT_EQ(report.repaired, 0u);
  // Without repair the corruption persists.
  const auto again = rig.scrub(false);
  EXPECT_EQ(again.mismatched.size(), 1u);
}

TEST(Scrub, RepairRestoresTheStripe) {
  Rig rig;
  rig.checkpoint(1);
  ASSERT_TRUE(rig.scrubber->inject_corruption(1, 0, 0));
  const auto report = rig.scrub(true);
  EXPECT_EQ(report.mismatched.size(), 1u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_TRUE(rig.scrub(false).clean());
}

TEST(Scrub, RepairedStripeRecoversByteExact) {
  // The full motivation: corruption + node failure = silent data
  // corruption unless the scrubber repaired the stripe first.
  Rig rig;
  rig.checkpoint(1);

  // Record committed payloads, corrupt group 0's parity, repair it.
  std::map<vm::VmId, std::vector<std::byte>> committed;
  for (vm::VmId vmid : rig.cluster.all_vms())
    committed[vmid] = rig.state.node_store(*rig.cluster.locate(vmid))
                          .find(vmid, 1)
                          ->payload();
  ASSERT_TRUE(rig.scrubber->inject_corruption(0, 0, 3));
  rig.scrub(true);

  // Now kill a node hosting a member of group 0 and recover.
  RecoveryManager recovery(rig.sim, rig.cluster, rig.state, idle_factory());
  const auto& group = rig.placed->plan.groups[0];
  const auto victim = *rig.cluster.locate(group.members[0]);
  const auto lost = rig.cluster.node(victim).hypervisor().vm_ids();
  rig.cluster.kill_node(victim);
  rig.state.drop_node(victim);
  bool ok = false;
  recovery.recover(*rig.placed, lost,
                   [&](const RecoveryStats& s) { ok = s.success; });
  rig.sim.run();
  ASSERT_TRUE(ok);
  for (vm::VmId vmid : lost)
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
              committed.at(vmid));
}

TEST(Scrub, UnrepairedCorruptionSilentlyPoisonsRecovery) {
  // Negative control: without scrubbing, the reconstruction completes but
  // yields wrong bytes — exactly the failure mode scrubbing exists for.
  Rig rig;
  rig.checkpoint(1);
  std::map<vm::VmId, std::vector<std::byte>> committed;
  for (vm::VmId vmid : rig.cluster.all_vms())
    committed[vmid] = rig.state.node_store(*rig.cluster.locate(vmid))
                          .find(vmid, 1)
                          ->payload();
  ASSERT_TRUE(rig.scrubber->inject_corruption(0, 0, 3));

  RecoveryManager recovery(rig.sim, rig.cluster, rig.state, idle_factory());
  const auto& group = rig.placed->plan.groups[0];
  const auto victim = *rig.cluster.locate(group.members[0]);
  const auto lost = rig.cluster.node(victim).hypervisor().vm_ids();
  rig.cluster.kill_node(victim);
  rig.state.drop_node(victim);
  bool ok = false;
  recovery.recover(*rig.placed, lost,
                   [&](const RecoveryStats& s) { ok = s.success; });
  rig.sim.run();
  ASSERT_TRUE(ok);  // recovery has no way to know
  bool any_wrong = false;
  for (vm::VmId vmid : lost)
    if (rig.cluster.machine(vmid).image().flatten() != committed.at(vmid))
      any_wrong = true;
  EXPECT_TRUE(any_wrong);
}

TEST(Scrub, WorksAcrossSchemes) {
  for (ParityScheme scheme :
       {ParityScheme::Raid5, ParityScheme::Rdp, ParityScheme::Rs}) {
    Rig rig(6, 1, scheme, /*k=*/3);
    rig.checkpoint(1);
    EXPECT_TRUE(rig.scrub(false).clean());
    ASSERT_TRUE(rig.scrubber->inject_corruption(0, 0, 1));
    const auto report = rig.scrub(true);
    EXPECT_EQ(report.mismatched.size(), 1u);
    EXPECT_TRUE(rig.scrub(false).clean());
  }
}

TEST(Scrub, InjectionBoundsChecked) {
  Rig rig;
  rig.checkpoint(1);
  EXPECT_FALSE(rig.scrubber->inject_corruption(99, 0, 0));
  EXPECT_FALSE(rig.scrubber->inject_corruption(0, 9, 0));
  EXPECT_FALSE(rig.scrubber->inject_corruption(0, 0, 1u << 30));
}

}  // namespace
}  // namespace vdc::core
