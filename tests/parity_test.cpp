// Tests for the parity substrate: XOR kernel, RAID-5 codec, RDP
// double-erasure codec (exhaustive erasure-pair sweeps), and rotation.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "parity/codec.hpp"
#include "parity/raid5.hpp"
#include "parity/rdp.hpp"
#include "parity/rotation.hpp"
#include "parity/xor.hpp"

namespace vdc::parity {
namespace {

Block random_block(Rng& rng, std::size_t n) {
  Block out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

TEST(Xor, SelfXorIsZero) {
  Rng rng(1);
  Block a = random_block(rng, 1000);
  Block b = a;
  xor_into(b, a);
  EXPECT_TRUE(all_zero(b));
}

TEST(Xor, IsInvolution) {
  Rng rng(2);
  Block a = random_block(rng, 777);  // odd size exercises the tail loop
  Block b = random_block(rng, 777);
  Block c = a;
  xor_into(c, b);
  xor_into(c, b);
  EXPECT_EQ(c, a);
}

TEST(Xor, SizesFromZeroToWordMultiples) {
  Rng rng(3);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 32u, 33u, 100u, 4096u}) {
    Block a = random_block(rng, n);
    Block b = random_block(rng, n);
    Block expect(n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = a[i] ^ b[i];
    xor_into(a, b);
    EXPECT_EQ(a, expect) << "size " << n;
  }
}

TEST(Xor, SizeMismatchThrows) {
  Block a(10), b(11);
  EXPECT_THROW(xor_into(a, b), InvariantError);
}

TEST(Xor, XorAllPadsShorterSources) {
  Block a{std::byte{1}, std::byte{2}};
  Block b{std::byte{4}};
  std::vector<std::span<const std::byte>> sources{a, b};
  Block out = xor_all(sources);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], std::byte{5});
  EXPECT_EQ(out[1], std::byte{2});
}

TEST(Raid5, ParityIsXorOfMembers) {
  Rng rng(4);
  Raid5Codec codec(3);
  std::vector<Block> data;
  for (int i = 0; i < 3; ++i) data.push_back(random_block(rng, 256));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);
  ASSERT_EQ(parity.size(), 1u);
  Block check = parity[0];
  for (const auto& d : data) xor_into(check, d);
  EXPECT_TRUE(all_zero(check));
}

class Raid5Reconstruct : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Raid5Reconstruct, AnySingleErasureRecovers) {
  const std::size_t erased = GetParam();
  Rng rng(5);
  constexpr std::size_t k = 4;
  Raid5Codec codec(k);
  std::vector<Block> data;
  for (std::size_t i = 0; i < k; ++i) data.push_back(random_block(rng, 128));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);

  std::vector<std::optional<Block>> stripe;
  for (const auto& d : data) stripe.emplace_back(d);
  stripe.emplace_back(parity[0]);
  const Block original = *stripe[erased];
  stripe[erased] = std::nullopt;
  codec.reconstruct(stripe);
  EXPECT_EQ(*stripe[erased], original);
}

INSTANTIATE_TEST_SUITE_P(AllPositions, Raid5Reconstruct,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

TEST(Raid5, DoubleErasureThrowsDataLoss) {
  Rng rng(6);
  Raid5Codec codec(3);
  std::vector<Block> data;
  for (int i = 0; i < 3; ++i) data.push_back(random_block(rng, 64));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);
  std::vector<std::optional<Block>> stripe;
  for (const auto& d : data) stripe.emplace_back(d);
  stripe.emplace_back(parity[0]);
  stripe[0] = std::nullopt;
  stripe[2] = std::nullopt;
  EXPECT_THROW(codec.reconstruct(stripe), DataLossError);
}

TEST(Raid5, NoErasureIsNoop) {
  Rng rng(7);
  Raid5Codec codec(2);
  std::vector<Block> data{random_block(rng, 64), random_block(rng, 64)};
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);
  std::vector<std::optional<Block>> stripe{data[0], data[1], parity[0]};
  codec.reconstruct(stripe);
  EXPECT_EQ(*stripe[0], data[0]);
}

TEST(Raid5, ApplyDeltaEqualsReencode) {
  Rng rng(8);
  Raid5Codec codec(3);
  std::vector<Block> data;
  for (int i = 0; i < 3; ++i) data.push_back(random_block(rng, 128));
  std::vector<BlockView> views(data.begin(), data.end());
  Block parity = codec.encode(views)[0];

  // Member 1 changes; update parity incrementally.
  Block old1 = data[1];
  data[1] = random_block(rng, 128);
  Raid5Codec::apply_delta(parity, old1, data[1]);

  std::vector<BlockView> views2(data.begin(), data.end());
  EXPECT_EQ(parity, codec.encode(views2)[0]);
}

TEST(Rdp, NextPrime) {
  EXPECT_EQ(RdpCodec::next_prime_at_least(2), 3u);
  EXPECT_EQ(RdpCodec::next_prime_at_least(3), 3u);
  EXPECT_EQ(RdpCodec::next_prime_at_least(4), 5u);
  EXPECT_EQ(RdpCodec::next_prime_at_least(8), 11u);
  EXPECT_EQ(RdpCodec::next_prime_at_least(14), 17u);
}

TEST(Rdp, ConstructionValidation) {
  EXPECT_THROW(RdpCodec(3, 4), ConfigError);   // p not prime
  EXPECT_THROW(RdpCodec(5, 5), ConfigError);   // k > p-1
  EXPECT_NO_THROW(RdpCodec(4, 5));
  EXPECT_EQ(RdpCodec(4, 5).block_granularity(), 4u);
}

TEST(Rdp, EncodeRejectsBadBlockSize) {
  Rng rng(9);
  RdpCodec codec(2, 5);  // granularity 4
  std::vector<Block> data{random_block(rng, 10), random_block(rng, 10)};
  std::vector<BlockView> views(data.begin(), data.end());
  EXPECT_THROW(codec.encode(views), ConfigError);
}

// Exhaustive double-erasure sweep over (p, k) and every erasure pair.
class RdpPairSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RdpPairSweep, EveryErasurePairRecovers) {
  const auto [p, k] = GetParam();
  Rng rng(10 + p * 31 + k);
  RdpCodec codec(k, p);
  const std::size_t block = (p - 1) * 16;

  std::vector<Block> data;
  for (std::size_t i = 0; i < k; ++i) data.push_back(random_block(rng, block));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);
  ASSERT_EQ(parity.size(), 2u);

  std::vector<Block> all = data;
  all.push_back(parity[0]);
  all.push_back(parity[1]);
  const std::size_t width = k + 2;

  for (std::size_t a = 0; a < width; ++a) {
    for (std::size_t b = a; b < width; ++b) {
      std::vector<std::optional<Block>> stripe(all.begin(), all.end());
      stripe[a] = std::nullopt;
      stripe[b] = std::nullopt;
      ASSERT_NO_THROW(codec.reconstruct(stripe))
          << "p=" << p << " k=" << k << " erased " << a << "," << b;
      EXPECT_EQ(*stripe[a], all[a]) << "erased " << a << "," << b;
      EXPECT_EQ(*stripe[b], all[b]) << "erased " << a << "," << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrimesAndWidths, RdpPairSweep,
    ::testing::Values(std::make_tuple(3u, 1u), std::make_tuple(3u, 2u),
                      std::make_tuple(5u, 2u), std::make_tuple(5u, 4u),
                      std::make_tuple(7u, 3u), std::make_tuple(7u, 6u),
                      std::make_tuple(13u, 5u), std::make_tuple(13u, 12u)));

TEST(Rdp, TripleErasureThrows) {
  Rng rng(11);
  RdpCodec codec(3, 5);
  const std::size_t block = 4 * 8;
  std::vector<Block> data;
  for (int i = 0; i < 3; ++i) data.push_back(random_block(rng, block));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);
  std::vector<std::optional<Block>> stripe;
  for (const auto& d : data) stripe.emplace_back(d);
  stripe.emplace_back(parity[0]);
  stripe.emplace_back(parity[1]);
  stripe[0] = std::nullopt;
  stripe[1] = std::nullopt;
  stripe[2] = std::nullopt;
  EXPECT_THROW(codec.reconstruct(stripe), DataLossError);
}

// Small-write oracle: folding old^new through for_each_update_range must
// land parity exactly where a full re-encode of the mutated data does —
// for every (p, k), every column, and ranges at every row-boundary shape.
class RdpUpdateSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RdpUpdateSweep, InPlaceUpdateMatchesReencode) {
  const auto [p, k] = GetParam();
  Rng rng(300 + p * 17 + k);
  RdpCodec codec(k, p);
  const std::size_t row_bytes = 8;
  const std::size_t block = (p - 1) * row_bytes;

  std::vector<Block> data;
  for (std::size_t i = 0; i < k; ++i) data.push_back(random_block(rng, block));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);

  // Range shapes: within one row, exactly one row, straddling a row
  // boundary, the whole block, and a tail ending at the block edge.
  const std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 1},
      {3, row_bytes - 3},
      {row_bytes, row_bytes},
      {row_bytes - 2, 5},
      {0, block},
      {block - 3, 3},
  };

  for (std::size_t col = 0; col < k; ++col) {
    for (const auto& [off, len] : ranges) {
      if (off + len > block) continue;
      Block updated = data[col];
      Block delta(len);
      for (std::size_t i = 0; i < len; ++i) {
        const auto nb = static_cast<std::byte>(rng.next() & 0xff);
        delta[i] = updated[off + i] ^ nb;
        updated[off + i] = nb;
      }

      Block rp = parity[0], dp = parity[1];
      codec.update(col, off, delta, rp, dp);

      std::vector<Block> mutated = data;
      mutated[col] = updated;
      std::vector<BlockView> mviews(mutated.begin(), mutated.end());
      auto expect = codec.encode(mviews);
      EXPECT_EQ(rp, expect[0]) << "p=" << p << " k=" << k << " col=" << col
                               << " off=" << off << " len=" << len;
      EXPECT_EQ(dp, expect[1]) << "p=" << p << " k=" << k << " col=" << col
                               << " off=" << off << " len=" << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrimesAndWidths, RdpUpdateSweep,
    ::testing::Values(std::make_tuple(3u, 1u), std::make_tuple(3u, 2u),
                      std::make_tuple(5u, 2u), std::make_tuple(5u, 4u),
                      std::make_tuple(7u, 3u), std::make_tuple(7u, 6u),
                      std::make_tuple(13u, 5u), std::make_tuple(13u, 12u)));

TEST(Rdp, UpdateRangeValidation) {
  RdpCodec codec(3, 5);
  const auto nop = [](std::size_t, std::size_t, std::size_t, std::size_t) {};
  EXPECT_THROW(codec.for_each_update_range(3, 0, 4, 32, nop), ConfigError);
  EXPECT_THROW(codec.for_each_update_range(0, 0, 4, 30, nop), ConfigError);
  EXPECT_THROW(codec.for_each_update_range(0, 30, 4, 32, nop), ConfigError);
  EXPECT_NO_THROW(codec.for_each_update_range(0, 0, 0, 32, nop));
}

TEST(Rdp, UpdateRangesNeverStraddleRows) {
  RdpCodec codec(6, 7);
  const std::size_t row_bytes = 16;
  const std::size_t block = 6 * row_bytes;
  codec.for_each_update_range(
      2, 5, block - 9, block,
      [&](std::size_t parity, std::size_t dst, std::size_t, std::size_t len) {
        EXPECT_LE(parity, 1u);
        EXPECT_EQ(dst / row_bytes, (dst + len - 1) / row_bytes);
        EXPECT_LE(dst + len, block);
      });
}

TEST(Rdp, RowParityMatchesRaid5) {
  // RDP's first parity block is plain row XOR: must equal RAID-5 parity.
  Rng rng(12);
  RdpCodec rdp(3, 5);
  Raid5Codec raid5(3);
  const std::size_t block = 4 * 32;
  std::vector<Block> data;
  for (int i = 0; i < 3; ++i) data.push_back(random_block(rng, block));
  std::vector<BlockView> views(data.begin(), data.end());
  EXPECT_EQ(rdp.encode(views)[0], raid5.encode(views)[0]);
}

TEST(Rotation, HolderIndexRotates) {
  EXPECT_EQ(ParityRotation::holder_index(0, 0, 4), 0u);
  EXPECT_EQ(ParityRotation::holder_index(1, 0, 4), 1u);
  EXPECT_EQ(ParityRotation::holder_index(4, 0, 4), 0u);
  EXPECT_EQ(ParityRotation::holder_index(0, 3, 4), 3u);
}

TEST(Rotation, LedgerBalance) {
  RotationLedger ledger(4);
  for (std::size_t g = 0; g < 100; ++g)
    ledger.record(ParityRotation::holder_index(g, 0, 4));
  EXPECT_EQ(ledger.total(), 100u);
  EXPECT_LE(ledger.imbalance(), 25.0 / 24.0 + 1e-9);
}

TEST(Rotation, LedgerImbalanceEdgeCases) {
  RotationLedger empty(3);
  EXPECT_DOUBLE_EQ(empty.imbalance(), 1.0);
  RotationLedger skewed(2);
  skewed.record(0);
  EXPECT_TRUE(std::isinf(skewed.imbalance()));
}

TEST(CodecHelpers, PaddedCopyAndRoundUp) {
  Block b{std::byte{1}, std::byte{2}};
  Block padded = padded_copy(b, 5);
  EXPECT_EQ(padded.size(), 5u);
  EXPECT_EQ(padded[0], std::byte{1});
  EXPECT_EQ(padded[4], std::byte{0});
  EXPECT_EQ(round_up(10, 4), 12u);
  EXPECT_EQ(round_up(12, 4), 12u);
  EXPECT_EQ(round_up(0, 4), 0u);
}

}  // namespace
}  // namespace vdc::parity
