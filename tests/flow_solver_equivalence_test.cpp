// Incremental-solver equivalence: the component-local re-solve must be
// bit-for-bit identical to a full from-scratch water-filling pass, after
// every mutation, on adversarial topologies. Both paths funnel through the
// same pure solve_component(), so equality is by construction — these
// tests exist to catch bookkeeping rot (stale adjacency, missed dirty
// marks, component under-collection) the moment it appears.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "net/flow_network.hpp"
#include "simkit/simulator.hpp"

namespace vdc::net {
namespace {

void expect_rates_match_oracle(FlowNetwork& fn, const char* where) {
  const auto oracle = fn.oracle_rates();
  for (const auto& [id, rate] : oracle) {
    // Bitwise equality, not EXPECT_NEAR: the incremental path must run the
    // exact float ops the full solve runs.
    ASSERT_EQ(fn.flow_rate(id), rate) << where << " flow " << id;
  }
}

// Random starts/cancels/capacity changes over a clustered topology chosen
// to produce many small components plus occasional giant ones; the live
// rates must match the oracle bitwise after every operation.
TEST(FlowSolverEquivalence, RandomizedOpsMatchOracleBitwise) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    simkit::Simulator sim;
    FlowNetwork fn(sim);
    ASSERT_TRUE(fn.incremental_solver());
    Rng rng(seed);

    constexpr int kPorts = 24;
    std::vector<PortId> ports;
    for (int i = 0; i < kPorts; ++i)
      ports.push_back(fn.add_port(rng.uniform(10.0, 500.0)));

    std::vector<FlowId> live;
    for (int op = 0; op < 400; ++op) {
      const double roll = rng.uniform();
      if (roll < 0.55 || live.empty()) {
        // Start a flow: usually within one cluster of 4 ports (small
        // components), sometimes spanning clusters (merges them).
        const int cluster = static_cast<int>(rng.uniform_u64(kPorts / 4)) * 4;
        std::vector<PortId> path{ports[cluster + rng.uniform_u64(4)]};
        const PortId second = rng.uniform() < 0.2
                                  ? ports[rng.uniform_u64(kPorts)]
                                  : ports[cluster + rng.uniform_u64(4)];
        if (second != path[0]) path.push_back(second);
        live.push_back(
            fn.start_flow(std::move(path), 1 + rng.uniform_u64(1u << 20),
                          [] {}));
      } else if (roll < 0.85) {
        const std::size_t victim = rng.uniform_u64(live.size());
        fn.cancel_flow(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        fn.set_capacity(ports[rng.uniform_u64(kPorts)],
                        rng.uniform(10.0, 500.0));
      }
      // Let a little sim time pass so settles and completions interleave.
      if (rng.chance(0.3)) {
        const double horizon = sim.now() + rng.uniform(0.0, 5.0);
        sim.run_until(horizon);
        // Drop ids whose flows completed meanwhile.
        std::vector<FlowId> still;
        for (FlowId id : live)
          if (fn.flow_rate(id) > 0.0) still.push_back(id);
        live.swap(still);
      }
      expect_rates_match_oracle(fn, "after op");
    }
  }
}

// Twin networks — incremental vs full solver — fed the identical schedule
// must produce identical completion traces (order AND bitwise times) and
// identical port byte counters.
TEST(FlowSolverEquivalence, TwinNetworksCompleteIdentically) {
  struct Run {
    explicit Run(bool incremental, std::uint64_t seed) {
      fn.set_incremental_solver(incremental);
      Rng rng(seed);
      for (int i = 0; i < 12; ++i)
        ports.push_back(fn.add_port(rng.uniform(20.0, 200.0)));
      for (int i = 0; i < 120; ++i) {
        const double at = rng.uniform(0.0, 50.0);
        const PortId a = ports[rng.uniform_u64(ports.size())];
        const PortId b = ports[rng.uniform_u64(ports.size())];
        const Bytes bytes = 1 + rng.uniform_u64(1u << 18);
        const double latency = rng.chance(0.25) ? rng.uniform(0.0, 2.0) : 0.0;
        const int tag = i;
        sim.at(at, [this, a, b, bytes, latency, tag] {
          std::vector<PortId> path{a};
          if (b != a) path.push_back(b);
          fn.start_flow(
              std::move(path), bytes,
              [this, tag] { trace.emplace_back(tag, sim.now()); }, latency);
        });
      }
      sim.run();
    }
    simkit::Simulator sim;
    FlowNetwork fn{sim};
    std::vector<PortId> ports;
    std::vector<std::pair<int, double>> trace;
  };

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Run inc(true, seed);
    Run full(false, seed);
    ASSERT_EQ(inc.trace.size(), full.trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < inc.trace.size(); ++i) {
      ASSERT_EQ(inc.trace[i].first, full.trace[i].first)
          << "seed " << seed << " step " << i;
      ASSERT_EQ(inc.trace[i].second, full.trace[i].second);
    }
    EXPECT_EQ(inc.sim.now(), full.sim.now());
    for (std::size_t p = 0; p < inc.ports.size(); ++p)
      EXPECT_EQ(inc.fn.port_bytes(inc.ports[p]),
                full.fn.port_bytes(full.ports[p]));
    // The point of the refactor: the incremental path re-solves far fewer
    // flows for the same answer.
    EXPECT_LT(inc.fn.solver_flows_solved(), full.fn.solver_flows_solved());
  }
}

// Disjoint components: touching one must not re-solve the other (the
// O(component) cost claim), and must not perturb its rates.
TEST(FlowSolverEquivalence, DisjointComponentsAreNotResolved) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId a = fn.add_port(100.0);
  const PortId b = fn.add_port(100.0);
  fn.start_flow({a}, 1u << 30, [] {});
  const FlowId fa2 = fn.start_flow({a}, 1u << 30, [] {});
  const std::uint64_t flows_before = fn.solver_flows_solved();

  // Start and cancel traffic on the unrelated port b.
  const FlowId fb = fn.start_flow({b}, 1u << 30, [] {});
  const double rate_a = fn.flow_rate(fa2);
  fn.cancel_flow(fb);
  EXPECT_EQ(fn.flow_rate(fa2), rate_a);
  EXPECT_EQ(fn.flow_rate(fa2), 50.0);
  // Only {fb}'s singleton component was solved by the two ops.
  EXPECT_EQ(fn.solver_flows_solved(), flows_before + 1);
  expect_rates_match_oracle(fn, "after disjoint ops");
}

}  // namespace
}  // namespace vdc::net
