// Tests for the discrete-event engine: ordering, cancellation, clock
// semantics, and the FCFS resource.

#include <gtest/gtest.h>

#include <vector>

#include "simkit/resource.hpp"
#include "simkit/simulator.hpp"

namespace vdc::simkit {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(5.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(10.0, [&] {
    sim.after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelFromInsideEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.at(2.0, [&] { fired = true; });
  sim.at(1.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilWithCancelledHead) {
  Simulator sim;
  const EventId id = sim.at(1.0, [] {});
  sim.cancel(id);
  bool fired = false;
  sim.at(10.0, [&] { fired = true; });
  sim.run_until(5.0);  // must not stop at the tombstone
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(1.0, [] {}), InvariantError);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(1.0, recurse);
  };
  sim.after(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulator, MaxEventsBudget) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.after(1.0, forever); };
  sim.after(0.0, forever);
  sim.run(50);
  EXPECT_EQ(sim.executed(), 50u);
}

TEST(Simulator, TombstoneCompactionBoundsQueue) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 4096; ++i)
    ids.push_back(sim.at(1.0 + i, [] {}));
  EXPECT_EQ(sim.queue_entries(), 4096u);
  // Cancel-heavy timer churn: without compaction every tombstone would
  // stay in the queue until its time came up.
  for (int i = 0; i < 4000; ++i) sim.cancel(ids[i]);
  EXPECT_EQ(sim.pending_count(), 96u);
  EXPECT_LT(sim.queue_entries(), 1024u);  // compacted down to live events
  EXPECT_GE(sim.compactions(), 1u);
  sim.run();
  EXPECT_EQ(sim.executed(), 96u);  // survivors still fire
}

TEST(Simulator, CancelAndQueueMetricsPublished) {
  Simulator sim;
  const EventId a = sim.at(1.0, [] {});
  sim.at(2.0, [] {});
  sim.at(3.0, [] {});
  sim.cancel(a);
  sim.run();
  const auto& metrics = sim.telemetry().metrics();
  EXPECT_DOUBLE_EQ(metrics.value("sim.events.cancelled"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.value("sim.queue.peak"), 3.0);
  EXPECT_EQ(sim.queue_peak(), 3u);
  EXPECT_EQ(sim.cancelled(), 1u);
}

TEST(Simulator, CalendarQueueKeepsOrderingAndFifo) {
  SimulatorConfig config;
  config.queue = QueueKind::Calendar;
  Simulator sim(config);
  EXPECT_STREQ(sim.queue_name(), "calendar");
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(30); });
  sim.at(1.0, [&] { order.push_back(10); });
  for (int i = 0; i < 10; ++i)
    sim.at(5.0, [&order, i] { order.push_back(100 + i); });
  sim.at(2.0, [&] { order.push_back(20); });
  const EventId victim = sim.at(4.0, [&] { order.push_back(40); });
  sim.cancel(victim);
  sim.run();
  std::vector<int> expect{10, 20, 30};
  for (int i = 0; i < 10; ++i) expect.push_back(100 + i);
  EXPECT_EQ(order, expect);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CalendarQueueRunUntilAndFarFuture) {
  SimulatorConfig config;
  config.queue = QueueKind::Calendar;
  Simulator sim(config);
  int fired = 0;
  // Dense head plus one sparse far-future watchdog (the pattern that
  // forces the calendar queue's direct-search fallback).
  for (int i = 0; i < 100; ++i) sim.after(0.001 * i, [&] { ++fired; });
  sim.at(1e6, [&] { ++fired; });
  sim.run_until(1.0);
  EXPECT_EQ(fired, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  sim.run();
  EXPECT_EQ(fired, 101);
  EXPECT_DOUBLE_EQ(sim.now(), 1e6);
}

TEST(Resource, ServesFcfs) {
  Simulator sim;
  Resource r(sim, 1);
  std::vector<std::pair<int, double>> done;
  for (int i = 0; i < 3; ++i)
    r.serve(2.0, [&, i] { done.emplace_back(i, sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].first, 0);
  EXPECT_DOUBLE_EQ(done[0].second, 2.0);
  EXPECT_DOUBLE_EQ(done[1].second, 4.0);
  EXPECT_DOUBLE_EQ(done[2].second, 6.0);
}

TEST(Resource, CapacityTwoOverlaps) {
  Simulator sim;
  Resource r(sim, 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) r.serve(3.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0], 3.0);
  EXPECT_DOUBLE_EQ(done[1], 3.0);
  EXPECT_DOUBLE_EQ(done[2], 6.0);
  EXPECT_DOUBLE_EQ(done[3], 6.0);
}

TEST(Resource, ManualAcquireRelease) {
  Simulator sim;
  Resource r(sim, 1);
  bool second_ran = false;
  r.acquire([&] {
    EXPECT_EQ(r.in_use(), 1u);
    sim.after(5.0, [&] { r.release(); });
  });
  r.acquire([&] { second_ran = true; });
  sim.run();
  EXPECT_TRUE(second_ran);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Resource, ReleaseWithoutAcquireThrows) {
  Simulator sim;
  Resource r(sim, 1);
  EXPECT_THROW(r.release(), InvariantError);
}

TEST(Resource, BusyTimeTracksUtilisation) {
  Simulator sim;
  Resource r(sim, 1);
  r.serve(4.0, [] {});
  sim.run();
  EXPECT_NEAR(r.busy_time(), 4.0, 1e-9);
}

TEST(Resource, ZeroCapacityRejected) {
  Simulator sim;
  EXPECT_THROW(Resource(sim, 0), ConfigError);
}

TEST(Resource, QueueLengthVisible) {
  Simulator sim;
  Resource r(sim, 1);
  for (int i = 0; i < 5; ++i) r.serve(1.0, [] {});
  // One request is admitted asynchronously; the rest queue.
  sim.run(1);
  EXPECT_GE(r.queue_length(), 3u);
  sim.run();
  EXPECT_EQ(r.queue_length(), 0u);
}

}  // namespace
}  // namespace vdc::simkit
