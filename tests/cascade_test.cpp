// Scripted cascading-failure scenarios for the recovery supervisor: a
// second failure landing inside an open recovery episode must kill its
// node, abort the in-flight reconstruction, and force a cascaded round —
// never be silently dropped. Three deterministic schedules cover the
// cross-group (survivable), same-group (escalates to restart) and
// re-struck-replacement cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/runtime.hpp"
#include "telemetry/sinks.hpp"

namespace vdc::core {
namespace {

ClusterConfig cascade_cluster() {
  ClusterConfig cc;
  cc.nodes = 8;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 32;
  cc.write_rate = 100.0;
  return cc;
}

JobRunner::BackendFactory dvdc_factory(ClusterConfig cc) {
  return [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
              Rng&) -> std::unique_ptr<CheckpointBackend> {
    PlannerConfig planner;
    planner.group_size = 3;
    return std::make_unique<DvdcBackend>(sim, cluster, ProtocolConfig{},
                                         RecoveryConfig{},
                                         make_workload_factory(cc), planner);
  };
}

JobConfig base_job() {
  JobConfig job;
  job.total_work = minutes(20);
  job.interval = minutes(5);  // first commit at ~300 s of work
  job.seed = 33;
  return job;
}

// Per-node RAID-group incidence (the groups whose member VMs or parity
// blocks live on each node), read off a fault-free probe run. Placement
// is deterministic per seed, so the scripted runs below see the same plan
// up to their first strike.
std::vector<std::set<std::size_t>> probe_incidence(const JobConfig& base,
                                                   const ClusterConfig& cc) {
  JobConfig probe = base;
  probe.failure_schedule.clear();
  probe.observer = nullptr;
  JobRunner runner(probe, cc, dvdc_factory(cc));
  const RunResult r = runner.run();
  EXPECT_TRUE(r.finished);
  auto* backend = dynamic_cast<DvdcBackend*>(runner.backend());
  EXPECT_NE(backend, nullptr);
  const PlacedPlan& placed = backend->placed_plan();
  std::vector<std::set<std::size_t>> incidence(cc.nodes);
  for (std::size_t gi = 0; gi < placed.plan.groups.size(); ++gi) {
    for (vm::VmId vmid : placed.plan.groups[gi].members) {
      const auto node = runner.cluster().locate(vmid);
      EXPECT_TRUE(node.has_value());
      if (node) incidence[*node].insert(gi);
    }
    for (cluster::NodeId holder : placed.holders[gi])
      incidence[holder].insert(gi);
  }
  return incidence;
}

using NodePair = std::pair<cluster::NodeId, cluster::NodeId>;

std::optional<NodePair> disjoint_pair(
    const std::vector<std::set<std::size_t>>& incidence) {
  for (cluster::NodeId a = 0; a < incidence.size(); ++a)
    for (cluster::NodeId b = a + 1; b < incidence.size(); ++b) {
      const bool overlap = std::any_of(
          incidence[a].begin(), incidence[a].end(),
          [&](std::size_t g) { return incidence[b].count(g) != 0; });
      if (!overlap) return NodePair{a, b};
    }
  return std::nullopt;
}

std::optional<NodePair> overlapping_pair(
    const std::vector<std::set<std::size_t>>& incidence) {
  for (cluster::NodeId a = 0; a < incidence.size(); ++a)
    for (cluster::NodeId b = a + 1; b < incidence.size(); ++b) {
      const bool overlap = std::any_of(
          incidence[a].begin(), incidence[a].end(),
          [&](std::size_t g) { return incidence[b].count(g) != 0; });
      if (overlap) return NodePair{a, b};
    }
  return std::nullopt;
}

std::size_t located_vms(cluster::ClusterManager& cluster) {
  std::size_t n = 0;
  for (vm::VmId vmid : cluster.all_vms())
    if (cluster.locate(vmid).has_value()) ++n;
  return n;
}

void expect_all_running(cluster::ClusterManager& cluster,
                        const ClusterConfig& cc) {
  ASSERT_EQ(cluster.all_vms().size(),
            std::size_t{cc.nodes} * cc.vms_per_node);
  for (vm::VmId vmid : cluster.all_vms())
    EXPECT_EQ(cluster.machine(vmid).state(), vm::VmState::Running);
}

TEST(Cascade, CrossGroupSecondFailureRecoversInCascadedRound) {
  const ClusterConfig cc = cascade_cluster();
  const JobConfig base = base_job();
  const auto incidence = probe_incidence(base, cc);
  const auto pair = disjoint_pair(incidence);
  ASSERT_TRUE(pair.has_value())
      << "no disjoint-incidence node pair under this seed; reshape cluster";
  const auto [a, b] = *pair;

  JobConfig job = base;
  // First strike after the first commit; second lands mid-recovery.
  job.failure_schedule = {{360.0, a}, {362.0, b}};
  JobRunner* rp = nullptr;
  bool cascade_seen = false;
  bool victim_dead_at_cascade = false;
  job.observer = [&](const JobEvent& ev) {
    if (ev.kind != JobEvent::Kind::Cascade) return;
    cascade_seen = true;
    EXPECT_EQ(ev.node, b);
    // The latent bug this suite exists for: a mid-recovery strike must
    // kill its node immediately, not be dropped.
    victim_dead_at_cascade = !rp->cluster().node(ev.node).alive();
  };
  JobRunner runner(job, cc, dvdc_factory(cc));
  rp = &runner;
  auto sink = std::make_shared<telemetry::InMemorySink>();
  runner.sim().telemetry().set_enabled(true);
  runner.sim().telemetry().add_sink(sink);
  const RunResult r = runner.run();

  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.failures, 2u);
  EXPECT_EQ(r.failures_during_recovery, 1u);
  EXPECT_EQ(r.recovery_cascades, 1u);
  EXPECT_EQ(r.job_restarts, 0u);
  EXPECT_TRUE(cascade_seen);
  EXPECT_TRUE(victim_dead_at_cascade);

  // One episode root span covering both strikes: two detect windows and a
  // backoff bar nest under it.
  const auto roots = sink->named("recovery");
  ASSERT_EQ(roots.size(), 1u);
  const auto detects = sink->named("recovery.detect");
  ASSERT_EQ(detects.size(), 2u);
  for (const auto& d : detects) EXPECT_EQ(d.parent, roots[0].id);
  const auto retries = sink->named("recovery.retry");
  ASSERT_EQ(retries.size(), 1u);
  EXPECT_EQ(retries[0].parent, roots[0].id);

  auto& metrics = runner.sim().telemetry().metrics();
  EXPECT_EQ(metrics.value("recovery.attempts"), 2.0);
  EXPECT_EQ(metrics.value("recovery.cascades"), 1.0);
  EXPECT_GE(metrics.value("recovery.aborted"), 1.0);
  EXPECT_EQ(metrics.value("job.failures_during_recovery"), 1.0);
  EXPECT_EQ(metrics.find("job.failures_ignored"), nullptr);

  expect_all_running(runner.cluster(), cc);
  EXPECT_FALSE(runner.cluster().degraded());
}

TEST(Cascade, SameGroupSecondLossEscalatesToRestart) {
  const ClusterConfig cc = cascade_cluster();
  const JobConfig base = base_job();
  const auto incidence = probe_incidence(base, cc);
  const auto pair = overlapping_pair(incidence);
  ASSERT_TRUE(pair.has_value());
  const auto [a, b] = *pair;

  JobConfig job = base;
  // Second strike inside the detection window: both losses fold into one
  // attempt whose shared group then has two erasures — beyond RAID-5.
  job.failure_schedule = {{360.0, a}, {360.3, b}};
  bool settled_failure = false;
  bool restart_after_failure = false;
  SimTime watermark_after_restart = -1.0;
  job.observer = [&](const JobEvent& ev) {
    if (ev.kind == JobEvent::Kind::RecoverySettled && !ev.success)
      settled_failure = true;
    if (ev.kind == JobEvent::Kind::Restart && settled_failure) {
      restart_after_failure = true;
      watermark_after_restart = ev.committed_work;
    }
  };
  JobRunner runner(job, cc, dvdc_factory(cc));
  const RunResult r = runner.run();

  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.failures, 2u);
  EXPECT_EQ(r.failures_during_recovery, 1u);
  EXPECT_EQ(r.recovery_cascades, 1u);
  EXPECT_EQ(r.job_restarts, 1u);
  EXPECT_TRUE(settled_failure);
  EXPECT_TRUE(restart_after_failure);
  EXPECT_EQ(watermark_after_restart, 0.0);

  auto& metrics = runner.sim().telemetry().metrics();
  EXPECT_EQ(metrics.value("recovery.attempts"), 1.0);
  EXPECT_EQ(metrics.value("recovery.cascades"), 1.0);
  EXPECT_GE(metrics.value("recovery.failures"), 0.0);  // labeled by reason
  EXPECT_EQ(metrics.find("job.failures_ignored"), nullptr);

  expect_all_running(runner.cluster(), cc);
  EXPECT_FALSE(runner.cluster().degraded());
}

TEST(Cascade, RestrikingTheReplacementNodeRetriesRecovery) {
  const ClusterConfig cc = cascade_cluster();
  JobConfig job = base_job();
  // Node 0 dies, is revived for the reconstruction attempt, and — being
  // the emptiest node — starts receiving the re-placed VMs. Striking it
  // again mid-replace must abort and retry, not wedge.
  const cluster::NodeId a = 0;
  job.failure_schedule = {{360.0, a}, {362.0, a}};
  JobRunner* rp = nullptr;
  bool cascade_seen = false;
  std::size_t missing_at_cascade = 0;
  job.observer = [&](const JobEvent& ev) {
    if (ev.kind != JobEvent::Kind::Cascade) return;
    cascade_seen = true;
    EXPECT_EQ(ev.node, a);
    missing_at_cascade =
        std::size_t{cc.nodes} * cc.vms_per_node - located_vms(rp->cluster());
  };
  JobRunner runner(job, cc, dvdc_factory(cc));
  rp = &runner;
  // Sample the victim's load just before the re-strike: the recovery must
  // actually have been re-placing VMs onto it for this scenario to bite.
  std::size_t on_victim_before_restrike = 0;
  runner.sim().at(361.9, [&] {
    on_victim_before_restrike =
        runner.cluster().node(a).hypervisor().vm_ids().size();
  });
  const RunResult r = runner.run();

  ASSERT_TRUE(r.finished);
  EXPECT_TRUE(cascade_seen);
  EXPECT_GT(on_victim_before_restrike, 0u)
      << "re-strike landed before any VM was re-placed on the victim";
  EXPECT_GE(missing_at_cascade, 1u);
  EXPECT_EQ(r.failures, 2u);
  EXPECT_EQ(r.failures_during_recovery, 1u);
  EXPECT_EQ(r.recovery_cascades, 1u);
  EXPECT_EQ(r.job_restarts, 0u);

  auto& metrics = runner.sim().telemetry().metrics();
  EXPECT_EQ(metrics.value("recovery.attempts"), 2.0);
  EXPECT_EQ(metrics.value("recovery.cascades"), 1.0);
  EXPECT_GE(metrics.value("recovery.aborted"), 1.0);

  expect_all_running(runner.cluster(), cc);
  EXPECT_FALSE(runner.cluster().degraded());
}

TEST(Cascade, LeaderKillMidRecoveryCompletesAllWork) {
  // The coordinator dies WHILE supervising someone else's recovery: the
  // first strike opens an episode, then a scheduled kill-leader lands
  // inside it. The kill folds the control leader into the episode as a
  // cascade, a successor is elected (the next recovery attempt waits on
  // the election), the successor's replayed log carries the open
  // episode, and the job commits the same total work as an undisturbed
  // run would.
  const ClusterConfig cc = cascade_cluster();
  JobConfig job = base_job();
  job.control = controlplane::ControlPlaneConfig{};
  // Node 0 is the bootstrap leader; make the first victim a data node so
  // the kill-leader at 362 is a genuine mid-recovery coordinator loss.
  job.failure_schedule = failure::ScheduledFailureInjector::parse(
      "fail 360 5\n"
      "kill-leader at 362\n");
  double final_watermark = 0.0;
  std::size_t cascades = 0;
  job.observer = [&](const JobEvent& ev) {
    if (ev.kind == JobEvent::Kind::Cascade) ++cascades;
    if (ev.kind == JobEvent::Kind::Rollback ||
        ev.kind == JobEvent::Kind::Restart) {
      final_watermark = ev.committed_work;
    } else {
      EXPECT_GE(ev.committed_work, final_watermark - 1e-9);
      final_watermark = std::max(final_watermark, ev.committed_work);
    }
  };
  JobRunner runner(job, cc, dvdc_factory(cc));
  const RunResult r = runner.run();

  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.failures, 2u);
  EXPECT_GE(cascades, 1u);
  // Same total committed work as an undisturbed run. The final stretch
  // past the last commit runs uncheckpointed, so the watermark tops out
  // at the last interval boundary in both runs.
  EXPECT_DOUBLE_EQ(final_watermark, job.total_work - job.interval);
  auto* cp = runner.control();
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->elections(), 1u);
  EXPECT_TRUE(cp->election_safety_ok());
  EXPECT_TRUE(cp->epoch_sequence_ok());
  EXPECT_TRUE(cp->logs_consistent());
  // The post-election leader's replayed view converged with the data
  // plane: the episode is closed and the last epoch is the committed one.
  ASSERT_TRUE(cp->leader().has_value());
  EXPECT_FALSE(cp->leader_view()->episode_open);
  EXPECT_EQ(cp->leader_view()->committed_epoch,
            runner.backend()->committed_epoch());
  expect_all_running(runner.cluster(), cc);
}

}  // namespace
}  // namespace vdc::core
