// Abort-path coverage for the parity-delta fold.
//
// The fast data plane folds each epoch's deltas into the committed parity
// record IN PLACE as delta chunks arrive off the wire, so the standing
// parity is mutated while the exchange is still in flight. An abort must
// therefore (a) replay the undo log so every touched parity byte returns
// to its committed value — including bytes whose fold never ran, (b)
// discard the aborted captures, and (c) re-mark the consumed dirty pages
// so the next epoch's delta still covers everything changed since the
// committed cut. This suite proves all three, for each codec's fold
// geometry: RAID-5 (same-offset XOR), RDP (row/diagonal ranges), and
// Reed-Solomon (Cauchy-scaled folds).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/plan.hpp"
#include "core/protocol.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(7)};
  DvdcState state;

  Rig() {
    for (int n = 0; n < 5; ++n) cluster.add_node();
    for (int n = 0; n < 5; ++n)
      for (int v = 0; v < 2; ++v)
        cluster.boot_vm(n, kib(1), 32,
                        std::make_unique<vm::UniformWorkload>(300.0));
  }

  PlacedPlan plan(ParityScheme scheme) {
    PlannerConfig pc;
    pc.group_size = 3;
    return PlacedPlan::make(GroupPlanner(pc).plan(cluster), cluster, scheme);
  }

  EpochStats run_one(DvdcCoordinator& coord, const PlacedPlan& placed,
                     checkpoint::Epoch epoch) {
    std::optional<EpochStats> stats;
    coord.run_epoch(placed, epoch, [&](const EpochStats& s) { stats = s; });
    sim.run();
    EXPECT_TRUE(stats.has_value());
    return *stats;
  }
};

using ParityBlocks = std::map<GroupId, std::vector<parity::Block>>;

ParityBlocks snapshot_parity(Rig& rig, const PlacedPlan& placed) {
  ParityBlocks out;
  for (const auto& group : placed.plan.groups) {
    const auto* record = rig.state.parity(group.id);
    EXPECT_NE(record, nullptr);
    if (record) out[group.id] = record->blocks;
  }
  return out;
}

std::map<vm::VmId, std::set<vm::PageIndex>> snapshot_dirty(Rig& rig) {
  std::map<vm::VmId, std::set<vm::PageIndex>> out;
  for (vm::VmId vmid : rig.cluster.all_vms()) {
    const auto pages =
        rig.cluster.machine(vmid).image().dirty_pages();
    out[vmid] = {pages.begin(), pages.end()};
  }
  return out;
}

class DeltaAbort : public ::testing::TestWithParam<ParityScheme> {};

TEST_P(DeltaAbort, MidEpochAbortUnwindsFoldAndRemarksDirty) {
  Rig rig;
  ProtocolConfig config;
  config.scheme = GetParam();
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state, config);
  auto placed = rig.plan(GetParam());

  auto s1 = rig.run_one(coord, placed, 1);
  ASSERT_TRUE(s1.committed);
  rig.cluster.advance_workloads(1.0);

  const ParityBlocks committed = snapshot_parity(rig, placed);
  const auto dirty_before = snapshot_dirty(rig);
  std::size_t total_dirty = 0;
  for (const auto& [vmid, pages] : dirty_before) total_dirty += pages.size();
  ASSERT_GT(total_dirty, 0u) << "workload produced no dirty pages";

  // Launch epoch 2. The fast plane folds deltas into the committed record
  // in place as chunks arrive, so pumping the exchange event-by-event must
  // eventually mutate the standing parity mid-flight — exactly the window
  // an abort must unwind.
  bool finished = false;
  coord.run_epoch(placed, 2, [&](const EpochStats&) { finished = true; });
  ASSERT_TRUE(rig.state.fold_in_flight());
  bool any_mutated = false;
  for (int step = 0; step < 10000 && !any_mutated && !finished; ++step) {
    rig.sim.run(1);
    for (const auto& [gid, blocks] : committed) {
      const auto* record = rig.state.parity(gid);
      ASSERT_NE(record, nullptr);
      if (record->blocks != blocks) any_mutated = true;
    }
  }
  EXPECT_TRUE(any_mutated) << "no in-place fold happened; test is vacuous";
  ASSERT_FALSE(finished);
  coord.abort();
  rig.sim.run();

  // (a) Every parity byte is back to its committed value.
  EXPECT_FALSE(rig.state.fold_in_flight());
  EXPECT_EQ(rig.state.committed_epoch(), 1u);
  for (const auto& [gid, blocks] : committed) {
    const auto* record = rig.state.parity(gid);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->epoch, 1u);
    ASSERT_EQ(record->blocks.size(), blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i)
      EXPECT_EQ(record->blocks[i], blocks[i])
          << "group " << gid << " parity " << i << " not unwound";
  }

  // (b) The aborted epoch's captures are gone, epoch 1's remain.
  for (vm::VmId vmid : rig.cluster.all_vms()) {
    const auto loc = rig.cluster.locate(vmid);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(rig.state.node_store(*loc).find(vmid, 2), nullptr);
    EXPECT_NE(rig.state.node_store(*loc).find(vmid, 1), nullptr);
  }

  // (c) Every dirty page the capture consumed is marked again.
  const auto dirty_after = snapshot_dirty(rig);
  for (const auto& [vmid, pages] : dirty_before) {
    const auto& after = dirty_after.at(vmid);
    for (vm::PageIndex p : pages)
      EXPECT_TRUE(after.count(p))
          << "vm " << vmid << " page " << p << " lost its dirty bit";
  }

  // The next epoch folds the same deltas again and commits a stripe that
  // matches a from-scratch encode of the new checkpoints.
  auto s2 = rig.run_one(coord, placed, 2);
  ASSERT_TRUE(s2.committed);
  EXPECT_FALSE(s2.full_exchange);
  EXPECT_EQ(rig.state.committed_epoch(), 2u);
  for (const auto& group : placed.plan.groups) {
    const auto* record = rig.state.parity(group.id);
    ASSERT_NE(record, nullptr);
    auto codec = make_codec(record->scheme, group.members.size(),
                            config.rs_parity);
    std::vector<parity::Block> padded;
    std::vector<parity::BlockView> views;
    for (vm::VmId m : group.members) {
      const auto loc = rig.cluster.locate(m);
      ASSERT_TRUE(loc.has_value());
      const auto* cp = rig.state.node_store(*loc).find(m, 2);
      ASSERT_NE(cp, nullptr);
      padded.push_back(cp->padded_payload(record->block_size));
    }
    for (const auto& p : padded) views.emplace_back(p);
    const auto expect = codec->encode(views);
    ASSERT_EQ(expect.size(), record->blocks.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
      EXPECT_EQ(expect[i], record->blocks[i])
          << "group " << group.id << " parity " << i;
  }
}

TEST_P(DeltaAbort, DoubleAbortThenCommitStaysExact) {
  // Two consecutive aborted epochs stack their undo replays and dirty
  // re-marks; the third attempt must still commit an exact stripe.
  Rig rig;
  ProtocolConfig config;
  config.scheme = GetParam();
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state, config);
  auto placed = rig.plan(GetParam());
  rig.run_one(coord, placed, 1);

  const ParityBlocks committed = snapshot_parity(rig, placed);
  for (int attempt = 0; attempt < 2; ++attempt) {
    rig.cluster.advance_workloads(0.5);
    coord.run_epoch(placed, 2, [](const EpochStats&) {});
    rig.sim.run(2);
    coord.abort();
    rig.sim.run();
    for (const auto& [gid, blocks] : committed) {
      const auto* record = rig.state.parity(gid);
      ASSERT_NE(record, nullptr);
      EXPECT_EQ(record->blocks, blocks) << "attempt " << attempt;
    }
  }

  auto s = rig.run_one(coord, placed, 2);
  ASSERT_TRUE(s.committed);
  EXPECT_EQ(rig.state.committed_epoch(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DeltaAbort,
                         ::testing::Values(ParityScheme::Raid5,
                                           ParityScheme::Rdp,
                                           ParityScheme::Rs),
                         [](const auto& info) {
                           switch (info.param) {
                             case ParityScheme::Raid5:
                               return "Raid5";
                             case ParityScheme::Rdp:
                               return "Rdp";
                             case ParityScheme::Rs:
                               return "Rs";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace vdc::core
