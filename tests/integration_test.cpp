// End-to-end integration: the paper's Figure 1-4 architectures as running
// configurations, and the DVDC-vs-baseline ordering that Figure 5 predicts,
// measured on the discrete-event system rather than the closed form.

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/runtime.hpp"
#include "model/analytic.hpp"
#include "model/overhead.hpp"

namespace vdc::core {
namespace {

ClusterConfig fig4_cluster() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.page_size = kib(1);
  cc.pages_per_vm = 64;
  cc.write_rate = 200.0;
  return cc;
}

JobRunner::BackendFactory dvdc_factory(ClusterConfig cc,
                                       ProtocolConfig pc = {}) {
  return [cc, pc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
                  Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, pc, RecoveryConfig{},
                                         make_workload_factory(cc));
  };
}

TEST(Integration, Figure1FirstShotOneVmPerNode) {
  // Figure 1: N+1 nodes, one VM each; the "+1" ends up holding parity.
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 1;
  cc.page_size = kib(1);
  cc.pages_per_vm = 32;
  cc.write_rate = 100.0;
  JobConfig job;
  job.total_work = minutes(20);
  job.interval = minutes(4);
  job.lambda = 1.0 / minutes(10);
  job.seed = 31;
  // group_size 3 leaves one node as the dedicated parity holder.
  ProtocolConfig pc;
  PlannerConfig planner;
  planner.group_size = 3;
  auto factory = [cc, pc, planner](simkit::Simulator& sim,
                                   cluster::ClusterManager& cluster, Rng&)
      -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, pc, RecoveryConfig{},
                                         make_workload_factory(cc), planner);
  };
  JobRunner runner(job, cc, factory);
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  EXPECT_GT(result.epochs, 0u);
  EXPECT_EQ(result.job_restarts + 0u, result.job_restarts);  // ran cleanly
}

TEST(Integration, Figure4FullyDistributedSurvivesEveryNodeFailing) {
  // Kill each node in turn (with recovery in between): the Fig. 4 layout
  // must survive all single-node failures.
  for (cluster::NodeId victim = 0; victim < 4; ++victim) {
    simkit::Simulator sim;
    cluster::ClusterManager cluster(sim, Rng(41 + victim));
    ClusterConfig cc = fig4_cluster();
    for (std::uint32_t n = 0; n < cc.nodes; ++n) cluster.add_node();
    auto workloads = make_workload_factory(cc);
    for (std::uint32_t n = 0; n < cc.nodes; ++n)
      for (std::uint32_t v = 0; v < cc.vms_per_node; ++v)
        cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

    DvdcState state;
    DvdcCoordinator coord(sim, cluster, state);
    RecoveryManager recovery(sim, cluster, state, workloads);
    auto placed = PlacedPlan::make(GroupPlanner().plan(cluster), cluster,
                                   ParityScheme::Raid5);
    bool committed = false;
    coord.run_epoch(placed, 1, [&](const EpochStats&) { committed = true; });
    sim.run();
    ASSERT_TRUE(committed);

    const auto lost = cluster.node(victim).hypervisor().vm_ids();
    cluster.kill_node(victim);
    state.drop_node(victim);
    std::optional<RecoveryStats> stats;
    recovery.recover(placed, lost,
                     [&](const RecoveryStats& s) { stats = s; });
    sim.run();
    ASSERT_TRUE(stats.has_value());
    EXPECT_TRUE(stats->success)
        << "victim " << victim << ": " << stats->reason;
    EXPECT_EQ(stats->vms_recovered, 3u) << "victim " << victim;
  }
}

TEST(Integration, DvdcBeatsDiskFullUnderFailures) {
  // The Figure 5 ordering on the DES: same job, same failure seed, the
  // diskless runtime finishes sooner than the NAS-bound baseline.
  ClusterConfig cc = fig4_cluster();
  cc.pages_per_vm = 256;  // 256 KiB images: NAS path visibly expensive

  JobConfig job;
  job.total_work = hours(1);
  job.interval = minutes(6);
  job.lambda = 1.0 / minutes(25);
  job.seed = 47;

  JobRunner dvdc(job, cc, dvdc_factory(cc));
  const RunResult dv = dvdc.run();

  DiskFullConfig df;
  df.nas.frontend_rate = mib_per_s(50);
  df.nas.array = storage::DiskSpec{mib_per_s(40), mib_per_s(50),
                                   milliseconds(5)};
  auto df_factory = [cc, df](simkit::Simulator& sim,
                             cluster::ClusterManager& cluster,
                             Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DiskFullBackend>(sim, cluster,
                                             make_workload_factory(cc), df);
  };
  JobRunner diskfull(job, cc, df_factory);
  const RunResult dfr = diskfull.run();

  ASSERT_TRUE(dv.finished && dfr.finished);
  EXPECT_LT(dv.time_ratio, dfr.time_ratio);
  EXPECT_LT(dv.total_overhead, dfr.total_overhead);
}

TEST(Integration, MemoryOverheadIsModest) {
  // Paper: "for a modest memory overhead" — committed state is about one
  // checkpoint per VM plus one parity block per group.
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(53));
  ClusterConfig cc = fig4_cluster();
  for (std::uint32_t n = 0; n < cc.nodes; ++n) cluster.add_node();
  auto workloads = make_workload_factory(cc);
  Bytes guest_bytes = 0;
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    for (std::uint32_t v = 0; v < cc.vms_per_node; ++v) {
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));
      guest_bytes += cc.page_size * cc.pages_per_vm;
    }
  DvdcState state;
  DvdcCoordinator coord(sim, cluster, state);
  auto placed = PlacedPlan::make(GroupPlanner().plan(cluster), cluster,
                                 ParityScheme::Raid5);
  coord.run_epoch(placed, 1, [](const EpochStats&) {});
  sim.run();
  // Steady-state memory: one full checkpoint per VM + parity (1/3 of a
  // group per node here) — comfortably under 1.5x the guest footprint.
  EXPECT_LE(state.memory_bytes(),
            guest_bytes + guest_bytes / 2);
  EXPECT_GE(state.memory_bytes(), guest_bytes);
}

TEST(Integration, AnalyticAndDesAgreeOnOrdering) {
  // The analytic model (Section V) and the DES must agree on who wins and
  // roughly on the improvement's order of magnitude.
  const model::Fig5Scenario fig5 = model::fig5_scenario();
  const auto df = model::diskfull_costs(fig5.shape, fig5.hw);
  const auto dl = model::diskless_costs(fig5.shape, fig5.hw, true);
  const auto opt_df = model::optimal_interval(fig5.lambda, fig5.total_work,
                                              df.overhead, df.repair);
  const auto opt_dl = model::optimal_interval(fig5.lambda, fig5.total_work,
                                              dl.overhead, dl.repair);
  EXPECT_LT(opt_dl.ratio, opt_df.ratio);

  // DES at small scale, failure-free, same qualitative ordering was
  // checked above; here we additionally check the model's optimal
  // intervals are ordered as theory predicts (cheaper checkpoints ->
  // checkpoint more often).
  EXPECT_LT(opt_dl.interval, opt_df.interval);
}

}  // namespace
}  // namespace vdc::core
