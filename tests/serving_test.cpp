// Serving plane: output-commit semantics (nothing reaches a client before
// its epoch commits, aborts drop buffered egress), guest service queueing,
// and the stream-isolation invariant — enabling traffic leaves the fault
// schedule and the epoch wire bytes bit-identical, because the plane runs
// on its own Rng stream and never dirties guest memory.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/runtime.hpp"
#include "vm/service.hpp"
#include "workload/output_commit.hpp"
#include "workload/traffic.hpp"

namespace vdc::workload {
namespace {

// --- OutputCommitBuffer unit semantics -------------------------------------

HeldEgress egress_for(Cut cut, std::uint64_t serial, Bytes bytes = 100) {
  HeldEgress e;
  e.serial = serial;
  e.request = serial;
  e.guest = 1;
  e.cut = cut;
  e.bytes = bytes;
  return e;
}

TEST(OutputCommitBuffer, ReleasesOnlyAtCommit) {
  OutputCommitBuffer buf;
  EXPECT_EQ(buf.next_cut(), 1u);
  buf.hold(egress_for(1, 1));
  buf.hold(egress_for(1, 2));
  EXPECT_EQ(buf.held_count(), 2u);
  EXPECT_EQ(buf.held_bytes(), 200u);
  EXPECT_EQ(buf.committed(), 0u);

  const auto released = buf.commit(1);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].serial, 1u);  // generation order
  EXPECT_EQ(released[1].serial, 2u);
  EXPECT_EQ(buf.held_count(), 0u);
  EXPECT_EQ(buf.held_bytes(), 0u);
  EXPECT_EQ(buf.committed(), 1u);
  EXPECT_EQ(buf.next_cut(), 2u);
}

TEST(OutputCommitBuffer, AbortDropsHeldAndKeepsCutIndex) {
  OutputCommitBuffer buf;
  buf.hold(egress_for(1, 1));
  const auto dropped = buf.abort();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(buf.held_count(), 0u);
  // The epoch is retried under the same number.
  EXPECT_EQ(buf.next_cut(), 1u);
  EXPECT_EQ(buf.committed(), 0u);
  // The retried epoch serves fresh responses and commits them.
  buf.hold(egress_for(1, 2));
  const auto released = buf.commit(1);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].serial, 2u);
}

TEST(OutputCommitBuffer, ResetRestartsEpochNumbering) {
  OutputCommitBuffer buf;
  buf.commit(1);
  buf.hold(egress_for(2, 1));
  const auto dropped = buf.reset();
  EXPECT_EQ(dropped.size(), 1u);
  EXPECT_EQ(buf.next_cut(), 1u);
  EXPECT_EQ(buf.committed(), 0u);
}

// --- GuestService ----------------------------------------------------------

TEST(GuestService, FifoWithBoundedConcurrency) {
  simkit::Simulator sim;
  vm::GuestService::Config cfg;
  cfg.concurrency = 2;
  cfg.service_time = 1.0;
  vm::GuestService svc(sim, cfg);

  std::vector<std::pair<std::uint64_t, SimTime>> done;
  for (std::uint64_t t = 1; t <= 4; ++t)
    EXPECT_TRUE(svc.submit(
        t, [&done, &sim](std::uint64_t token) {
          done.emplace_back(token, sim.now());
        }));
  EXPECT_EQ(svc.in_service(), 2u);
  EXPECT_EQ(svc.queued(), 2u);
  sim.run();
  // Two servers: tokens 1,2 at t=1; 3,4 at t=2, FIFO order.
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0].second, 1.0);
  EXPECT_DOUBLE_EQ(done[1].second, 1.0);
  EXPECT_DOUBLE_EQ(done[2].second, 2.0);
  EXPECT_DOUBLE_EQ(done[3].second, 2.0);
}

TEST(GuestService, FailDropsEverythingInFlight) {
  simkit::Simulator sim;
  vm::GuestService::Config cfg;
  cfg.concurrency = 1;
  cfg.service_time = 1.0;
  vm::GuestService svc(sim, cfg);
  int fired = 0;
  svc.submit(1, [&fired](std::uint64_t) { ++fired; });
  svc.submit(2, [&fired](std::uint64_t) { ++fired; });
  svc.fail();
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(svc.in_service(), 0u);
  EXPECT_EQ(svc.queued(), 0u);
}

TEST(GuestService, ShedsBeyondQueueLimit) {
  simkit::Simulator sim;
  vm::GuestService::Config cfg;
  cfg.concurrency = 1;
  cfg.queue_limit = 1;
  vm::GuestService svc(sim, cfg);
  EXPECT_TRUE(svc.submit(1, [](std::uint64_t) {}));
  EXPECT_TRUE(svc.submit(2, [](std::uint64_t) {}));
  EXPECT_FALSE(svc.submit(3, [](std::uint64_t) {}));
  EXPECT_EQ(svc.shed(), 1u);
}

// --- TrafficPlane driven standalone ----------------------------------------

struct PlaneHarness {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(7)};
  std::unique_ptr<TrafficPlane> plane;

  explicit PlaneHarness(TrafficConfig cfg, std::uint32_t nodes = 2,
                        std::uint32_t vms_per_node = 2) {
    for (std::uint32_t n = 0; n < nodes; ++n) cluster.add_node();
    for (std::uint32_t n = 0; n < nodes; ++n)
      for (std::uint32_t v = 0; v < vms_per_node; ++v)
        cluster.boot_vm(n, kib(4), 4, std::make_unique<vm::IdleWorkload>());
    plane = std::make_unique<TrafficPlane>(sim, cluster, cfg, Rng(99));
    plane->start();
  }
};

TrafficConfig quick_traffic() {
  TrafficConfig cfg;
  cfg.clients_per_guest = 100;
  cfg.streams_per_guest = 2;
  cfg.think_time = 10.0;  // aggregate gap 0.1 s per stream
  cfg.client_timeout = 5.0;
  cfg.record_deliveries = true;
  return cfg;
}

TEST(TrafficPlane, NoEgressReleasedBeforeCommit) {
  PlaneHarness h(quick_traffic());
  h.sim.run_until(3.0);
  const auto s = h.plane->summary();
  EXPECT_GT(s.requests, 0u);
  EXPECT_GT(h.plane->buffer().held_count(), 0u);
  EXPECT_EQ(s.delivered, 0u);  // nothing committed yet
  EXPECT_TRUE(h.plane->deliveries().empty());

  h.plane->on_epoch_commit(1);
  h.sim.run_until(6.0);
  const auto after = h.plane->summary();
  EXPECT_GT(after.delivered, 0u);
  for (const auto& d : h.plane->deliveries()) {
    EXPECT_LE(d.cut, d.committed_at_delivery);
    EXPECT_GE(d.delivered_at, 3.0);  // not before the commit
  }
}

TEST(TrafficPlane, AbortDropsBufferedEgressAndClientsRetry) {
  PlaneHarness h(quick_traffic());
  h.sim.run_until(3.0);
  ASSERT_GT(h.plane->buffer().held_count(), 0u);

  h.plane->on_epoch_abort();
  EXPECT_EQ(h.plane->buffer().held_count(), 0u);
  EXPECT_GT(h.plane->summary().dropped_abort, 0u);
  EXPECT_EQ(h.plane->summary().delivered, 0u);

  // Clients time out (5 s), retry, get re-served; the retried epoch
  // commits and the responses flow.
  h.sim.run_until(9.0);
  h.plane->on_epoch_commit(1);
  h.sim.run_until(12.0);
  const auto s = h.plane->summary();
  EXPECT_GT(s.delivered, 0u);
  EXPECT_GT(s.retries, 0u);
  bool saw_retry_delivery = false;
  for (const auto& d : h.plane->deliveries()) {
    EXPECT_LE(d.cut, d.committed_at_delivery);
    if (d.attempts > 1) saw_retry_delivery = true;
  }
  EXPECT_TRUE(saw_retry_delivery);
}

TEST(TrafficPlane, FailoverDropsHeldEgressAndRecovers) {
  PlaneHarness h(quick_traffic());
  h.sim.run_until(3.0);
  ASSERT_GT(h.plane->buffer().held_count(), 0u);

  h.plane->on_failover_begin();
  EXPECT_EQ(h.plane->buffer().held_count(), 0u);
  EXPECT_GT(h.plane->summary().dropped_failover, 0u);
  // While recovering, arrivals are not served.
  h.sim.run_until(4.0);
  h.plane->on_epoch_commit(1);  // releasing an empty buffer is a no-op
  EXPECT_EQ(h.plane->summary().delivered, 0u);

  h.plane->on_failover_end();
  h.sim.run_until(12.0);
  h.plane->on_epoch_commit(2);
  h.sim.run_until(15.0);
  const auto s = h.plane->summary();
  EXPECT_GT(s.delivered, 0u);
  EXPECT_GT(s.downtime_visible, 0.0);
}

TEST(TrafficPlane, OpenLoopGeneratesPoissonArrivals) {
  TrafficConfig cfg = quick_traffic();
  cfg.mode = TrafficConfig::Mode::kOpen;
  cfg.request_rate = 0.2;  // x100 clients = 20 req/s/guest
  PlaneHarness h(cfg);
  h.sim.run_until(2.0);
  h.plane->on_epoch_commit(1);
  h.sim.run_until(4.0);
  const auto s = h.plane->summary();
  EXPECT_GT(s.requests, 50u);
  EXPECT_GT(s.delivered, 0u);
}

}  // namespace
}  // namespace vdc::workload

// --- stream isolation: traffic on/off bit-identity -------------------------

namespace vdc::core {
namespace {

struct FaultTraceEntry {
  JobEvent::Kind kind;
  SimTime time;
  cluster::NodeId node;
  bool operator==(const FaultTraceEntry& o) const {
    return kind == o.kind && time == o.time && node == o.node;
  }
};

JobRunner::BackendFactory dvdc_backend(ClusterConfig cc) {
  return [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
              Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, ProtocolConfig{},
                                         RecoveryConfig{},
                                         make_workload_factory(cc));
  };
}

struct TraceResult {
  std::vector<FaultTraceEntry> faults;
  RunResult run;
};

TraceResult run_traced(bool with_traffic) {
  JobConfig job;
  job.total_work = 60.0;
  job.interval = 20.0;
  job.seed = 1234;
  // Failures land in quiet windows, well clear of any commit point, so
  // wall-clock contention from serving flows cannot move a commit across
  // a failure time.
  failure::ScheduledFailure f1;
  f1.at = 35.0;
  f1.node = 1;
  failure::ScheduledFailure f2;
  f2.at = 50.0;
  f2.node = 2;
  job.failure_schedule = {f1, f2};
  if (with_traffic) {
    workload::TrafficConfig tc;
    tc.clients_per_guest = 50;
    tc.streams_per_guest = 2;
    tc.think_time = 5.0;
    tc.client_timeout = 2.0;
    job.traffic = tc;
  }

  TraceResult out;
  job.observer = [&out](const JobEvent& ev) {
    if (ev.kind == JobEvent::Kind::Failure ||
        ev.kind == JobEvent::Kind::Cascade)
      out.faults.push_back(FaultTraceEntry{ev.kind, ev.time, ev.node});
  };
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 32;
  cc.write_rate = 200.0;
  JobRunner runner(job, cc, dvdc_backend(cc));
  out.run = runner.run();
  EXPECT_TRUE(out.run.finished);
  return out;
}

TEST(ServingDeterminism, TrafficLeavesFaultScheduleAndWireBytesIdentical) {
  const TraceResult off = run_traced(false);
  const TraceResult on = run_traced(true);

  // The scripted failures fired at the same instants against the same
  // nodes...
  ASSERT_EQ(off.faults.size(), on.faults.size());
  for (std::size_t i = 0; i < off.faults.size(); ++i) {
    EXPECT_EQ(off.faults[i].kind, on.faults[i].kind) << "event " << i;
    EXPECT_DOUBLE_EQ(off.faults[i].time, on.faults[i].time) << "event " << i;
    EXPECT_EQ(off.faults[i].node, on.faults[i].node) << "event " << i;
  }
  EXPECT_GE(off.faults.size(), 2u);

  // ...and the checkpoint plane shipped bit-identical epochs: same count,
  // same bytes. The serving plane draws from its own Rng stream and never
  // dirties guest memory, so nothing it does can leak into the wire.
  EXPECT_EQ(off.run.epochs, on.run.epochs);
  EXPECT_EQ(off.run.bytes_shipped, on.run.bytes_shipped);
  EXPECT_EQ(off.run.failures, on.run.failures);
  EXPECT_EQ(off.run.job_restarts, on.run.job_restarts);
}

TEST(ServingRuntime, EndToEndJobServesClients) {
  JobConfig job;
  job.total_work = 30.0;
  job.interval = 5.0;
  job.seed = 77;
  workload::TrafficConfig tc;
  tc.clients_per_guest = 200;
  tc.streams_per_guest = 2;
  tc.think_time = 4.0;
  tc.client_timeout = 3.0;
  tc.record_deliveries = true;
  job.traffic = tc;

  ClusterConfig cc;
  cc.nodes = 3;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 32;
  cc.write_rate = 100.0;
  JobRunner runner(job, cc, dvdc_backend(cc));
  const RunResult r = runner.run();
  EXPECT_TRUE(r.finished);
  ASSERT_NE(runner.traffic(), nullptr);
  const auto s = runner.traffic()->summary();
  EXPECT_GT(s.delivered, 0u);
  EXPECT_GT(s.latency_p50, 0.0);
  EXPECT_LE(s.latency_p50, s.latency_p99);
  EXPECT_LE(s.latency_p99, s.latency_p999);
  for (const auto& d : runner.traffic()->deliveries())
    EXPECT_LE(d.cut, d.committed_at_delivery);
  // The serve.* metric family reached the registry.
  const auto& metrics = runner.sim().telemetry().metrics();
  EXPECT_GT(metrics.value("serve.delivered"), 0.0);
  EXPECT_GT(metrics.value("serve.requests"), 0.0);
  const auto* latency = metrics.find("serve.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->samples.count(), 0u);
}

}  // namespace
}  // namespace vdc::core
