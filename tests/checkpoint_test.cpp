// Tests for the checkpoint substrate: RLE codec, page deltas, the three
// checkpoint variants, and the in-memory store.

#include <gtest/gtest.h>

#include "checkpoint/checkpointer.hpp"
#include "checkpoint/delta.hpp"
#include "checkpoint/rle.hpp"
#include "checkpoint/store.hpp"
#include "vm/workload.hpp"

namespace vdc::checkpoint {
namespace {

std::vector<std::byte> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

TEST(Rle, EmptyRoundtrip) {
  const auto enc = rle_encode({});
  EXPECT_TRUE(rle_decode(enc, 0).empty());
}

TEST(Rle, AllZerosCompressHard) {
  std::vector<std::byte> zeros(4096, std::byte{0});
  const auto enc = rle_encode(zeros);
  EXPECT_LT(enc.size(), 8u);
  EXPECT_EQ(rle_decode(enc, zeros.size()), zeros);
}

TEST(Rle, AllLiteralsRoundtrip) {
  Rng rng(1);
  // Random bytes: many will be nonzero; roundtrip must be exact.
  const auto data = random_bytes(rng, 1000);
  const auto enc = rle_encode(data);
  EXPECT_EQ(rle_decode(enc, data.size()), data);
}

TEST(Rle, SparseDataCompresses) {
  std::vector<std::byte> data(4096, std::byte{0});
  for (std::size_t i = 100; i < 164; ++i) data[i] = std::byte{0xab};
  const auto enc = rle_encode(data);
  EXPECT_LT(enc.size(), 100u);
  EXPECT_EQ(rle_decode(enc, data.size()), data);
}

TEST(Rle, ShortZeroRunsFoldIntoLiterals) {
  // 0x01 00 00 01 pattern: zero runs of 2 should not fragment records.
  std::vector<std::byte> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(std::byte{1});
    data.push_back(std::byte{0});
    data.push_back(std::byte{0});
  }
  const auto enc = rle_encode(data);
  EXPECT_EQ(rle_decode(enc, data.size()), data);
}

TEST(Rle, RoundtripPropertySweep) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    // Mixed zero/literal segments of random lengths.
    std::vector<std::byte> data;
    const int segments = 1 + static_cast<int>(rng.uniform_u64(8));
    for (int s = 0; s < segments; ++s) {
      const std::size_t len = rng.uniform_u64(200);
      if (rng.chance(0.5)) {
        data.insert(data.end(), len, std::byte{0});
      } else {
        auto lit = random_bytes(rng, len);
        data.insert(data.end(), lit.begin(), lit.end());
      }
    }
    const auto enc = rle_encode(data);
    ASSERT_EQ(rle_decode(enc, data.size()), data) << "trial " << trial;
  }
}

TEST(Rle, MalformedInputThrows) {
  EXPECT_THROW(rle_decode({}, 10), Error);  // truncated
  std::vector<std::byte> bogus{std::byte{0x00}, std::byte{0x05}};
  EXPECT_THROW(rle_decode(bogus, 5), Error);  // missing literals
  // Trailing garbage after expected size.
  auto enc = rle_encode(std::vector<std::byte>(4, std::byte{0}));
  enc.push_back(std::byte{0});
  EXPECT_THROW(rle_decode(enc, 4), Error);
}

TEST(Delta, CaptureTracksDirtyPagesOnly) {
  vm::MemoryImage img(16, 8);
  img.write(3, 0, std::vector<std::byte>{std::byte{1}});
  img.write(6, 2, std::vector<std::byte>{std::byte{2}});
  PageDelta delta = capture_delta(img);
  EXPECT_EQ(delta.pages, (std::vector<vm::PageIndex>{3, 6}));
  EXPECT_EQ(delta.raw_bytes(), 32u);
  EXPECT_EQ(img.dirty_count(), 0u);  // cleared by capture
}

TEST(Delta, ApplyReproducesImage) {
  vm::MemoryImage img(16, 8);
  Rng rng(3);
  img.fill_random(rng);
  img.clear_dirty();
  auto base = img.flatten();

  vm::UniformWorkload w(50.0);
  w.advance(img, 1.0, rng);
  PageDelta delta = capture_delta(img);
  apply_delta(base, delta);
  EXPECT_EQ(base, img.flatten());
}

TEST(Delta, DiffImagesFindsChangedPages) {
  Rng rng(4);
  auto old_img = random_bytes(rng, 16 * 8);
  auto new_img = old_img;
  new_img[16 * 2 + 5] ^= std::byte{0xff};
  new_img[16 * 7 + 0] ^= std::byte{0x01};
  PageDelta delta = diff_images(old_img, new_img, 16);
  EXPECT_EQ(delta.pages, (std::vector<vm::PageIndex>{2, 7}));
  apply_delta(old_img, delta);
  EXPECT_EQ(old_img, new_img);
}

TEST(Delta, DiffIdenticalImagesIsEmpty) {
  Rng rng(5);
  auto img = random_bytes(rng, 64);
  EXPECT_TRUE(diff_images(img, img, 16).pages.empty());
}

TEST(Delta, DiffRejectsBadShapes) {
  std::vector<std::byte> a(32), b(31), c(30);
  EXPECT_THROW(diff_images(a, b, 16), ConfigError);
  EXPECT_THROW(diff_images(c, c, 16), ConfigError);  // not page aligned
}

TEST(Delta, CompressedRoundtrip) {
  vm::MemoryImage img(64, 16);
  Rng rng(6);
  img.fill_random(rng);
  img.clear_dirty();
  const auto base = img.flatten();

  vm::HotColdWorkload w(200.0, 0.25, 0.9);
  w.advance(img, 1.0, rng);
  PageDelta delta = capture_delta(img);

  CompressedDelta compressed = compress_delta(delta, base);
  PageDelta recovered = decompress_delta(compressed, base);
  EXPECT_EQ(recovered.pages, delta.pages);
  EXPECT_EQ(recovered.contents, delta.contents);
}

TEST(Delta, CompressionWinsOnSmallWrites) {
  // A 64-byte write into a 4 KiB page: XOR+RLE should beat raw pages.
  vm::MemoryImage img(4096, 8);
  Rng rng(7);
  img.fill_random(rng);
  img.clear_dirty();
  const auto base = img.flatten();
  std::vector<std::byte> small(64, std::byte{0x5a});
  img.write(3, 100, small);
  PageDelta delta = capture_delta(img);
  CompressedDelta compressed = compress_delta(delta, base);
  EXPECT_LT(compressed.wire_bytes(), delta.raw_bytes() / 10);
}

TEST(Checkpointer, FullCapturesExactContent) {
  vm::VirtualMachine machine(1, "vm", 64, 8,
                             std::make_unique<vm::IdleWorkload>());
  Rng rng(8);
  machine.image().fill_random(rng);
  FullCheckpointer full;
  Checkpoint cp = full.capture(machine, 5);
  EXPECT_EQ(cp.vm, 1u);
  EXPECT_EQ(cp.epoch, 5u);
  EXPECT_EQ(cp.payload, machine.image().flatten());
}

TEST(Checkpointer, IncrementalMatchesFullAcrossEpochs) {
  vm::VirtualMachine machine(1, "vm", 64, 256,
                             std::make_unique<vm::UniformWorkload>(50.0));
  Rng rng(9);
  machine.image().fill_random(rng);
  machine.image().clear_dirty();

  IncrementalCheckpointer inc;
  FullCheckpointer full;
  for (Epoch e = 1; e <= 5; ++e) {
    machine.advance(1.0, rng);
    auto result = inc.capture(machine, e);
    EXPECT_EQ(result.checkpoint.payload, full.capture(machine, e).payload)
        << "epoch " << e;
    if (e > 1) {
      // Increments should be smaller than the whole image.
      EXPECT_LT(result.shipped_raw, machine.image().size_bytes());
    }
  }
}

TEST(Checkpointer, IncrementalFirstEpochShipsEverything) {
  vm::VirtualMachine machine(1, "vm", 64, 16,
                             std::make_unique<vm::IdleWorkload>());
  IncrementalCheckpointer inc;
  auto result = inc.capture(machine, 1);
  EXPECT_EQ(result.shipped_raw, machine.image().size_bytes());
}

TEST(Checkpointer, ForkedMatchesForkPointNotLaterWrites) {
  vm::VirtualMachine machine(1, "vm", 64, 16,
                             std::make_unique<vm::UniformWorkload>(500.0));
  Rng rng(10);
  machine.image().fill_random(rng);
  const auto at_fork = machine.image().flatten();

  ForkedCheckpointer forked;
  auto snap = forked.fork(machine);
  machine.advance(1.0, rng);  // guest keeps dirtying
  auto result = forked.materialize(machine, std::move(snap), 3);
  EXPECT_EQ(result.checkpoint.payload, at_fork);
  EXPECT_GT(result.preserved_pages, 0u);
}

TEST(Store, PutFindLatest) {
  CheckpointStore store;
  Rng rng(11);
  Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 3;
  cp.payload = random_bytes(rng, 64);
  store.put(cp);
  EXPECT_NE(store.find(1, 3), nullptr);
  EXPECT_EQ(store.find(1, 2), nullptr);
  EXPECT_EQ(store.find(2, 3), nullptr);
  EXPECT_EQ(store.latest_epoch(1), 3u);
  EXPECT_FALSE(store.latest_epoch(2).has_value());
  EXPECT_EQ(store.total_bytes(), 64u);
}

TEST(Store, PutReplacesSameEpoch) {
  CheckpointStore store;
  Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 1;
  cp.payload.assign(100, std::byte{1});
  store.put(cp);
  cp.payload.assign(50, std::byte{2});
  store.put(cp);
  EXPECT_EQ(store.total_bytes(), 50u);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(Store, GcDropsOldEpochs) {
  CheckpointStore store;
  for (Epoch e = 1; e <= 4; ++e) {
    Checkpoint cp;
    cp.vm = 7;
    cp.epoch = e;
    cp.payload.assign(10, std::byte{0});
    store.put(std::move(cp));
  }
  store.gc_before(3);
  EXPECT_EQ(store.find(7, 1), nullptr);
  EXPECT_EQ(store.find(7, 2), nullptr);
  EXPECT_NE(store.find(7, 3), nullptr);
  EXPECT_NE(store.find(7, 4), nullptr);
  EXPECT_EQ(store.total_bytes(), 20u);
}

TEST(Store, EraseAndDrop) {
  CheckpointStore store;
  Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 1;
  cp.payload.assign(10, std::byte{0});
  store.put(cp);
  cp.epoch = 2;
  store.put(cp);
  store.erase(1, 1);
  EXPECT_EQ(store.find(1, 1), nullptr);
  EXPECT_EQ(store.total_bytes(), 10u);
  store.erase(1, 99);  // no-op
  store.drop_vm(1);
  EXPECT_EQ(store.total_bytes(), 0u);
  EXPECT_EQ(store.entry_count(), 0u);
}

TEST(Store, SharedPagesCountOnceInResidentBytes) {
  CheckpointStore store;
  Rng rng(12);
  Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 1;
  cp.page_size = 16;
  cp.payload = random_bytes(rng, 64);
  store.put(cp);
  const StoredCheckpoint* prev = store.find(1, 1);
  ASSERT_NE(prev, nullptr);
  ASSERT_EQ(prev->pages.size(), 4u);

  // Epoch 2 rewrites one page and shares the other three with epoch 1.
  StoredCheckpoint next;
  next.vm = 1;
  next.epoch = 2;
  next.page_size = 16;
  next.pages = prev->pages;
  const auto fresh = random_bytes(rng, 16);
  next.pages[2] = std::make_shared<const std::vector<std::byte>>(
      fresh.begin(), fresh.end());
  store.put(std::move(next));

  EXPECT_EQ(store.entry_count(), 2u);
  EXPECT_EQ(store.total_bytes(), 64u + 16u);  // shared pages count once
  const StoredCheckpoint* e2 = store.find(1, 2);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->size_bytes(), 64u);           // logical size is unshared
  store.erase(1, 1);
  EXPECT_EQ(store.total_bytes(), 64u);  // epoch 2 keeps every page alive
  auto flat = e2->payload();
  EXPECT_EQ(flat.size(), 64u);
  EXPECT_TRUE(std::equal(flat.begin() + 32, flat.begin() + 48,
                         fresh.begin()));
}

}  // namespace
}  // namespace vdc::checkpoint
