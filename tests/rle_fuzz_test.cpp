// Differential fuzz for the delta compression layer: rle_encode /
// rle_encoded_size / rle_decode must agree with each other on arbitrary
// buffers, and encode_record must always pick the cheaper of RLE and
// raw-prefix (trim) while staying exactly invertible. The default seed
// budget is small; the nightly job widens it with VDC_FUZZ_SEEDS.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "checkpoint/delta.hpp"
#include "checkpoint/rle.hpp"
#include "checkpoint/wire.hpp"
#include "common/assert.hpp"

namespace vdc::checkpoint {
namespace {

int fuzz_seed_count() {
  if (const char* env = std::getenv("VDC_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

// Buffers that look like real checkpoint XOR pages: long zero runs broken
// by short literal bursts, with density and length driven by the seed.
std::vector<std::byte> random_xor_page(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> len_dist(0, 5000);
  std::uniform_int_distribution<int> mode_dist(0, 3);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const std::size_t len = len_dist(rng);
  std::vector<std::byte> out(len, std::byte{0});
  const int mode = mode_dist(rng);
  if (mode == 0) return out;  // all zeros
  if (mode == 1) {            // dense garbage
    for (auto& b : out) b = static_cast<std::byte>(byte_dist(rng));
    return out;
  }
  // Sparse bursts (the common case for dirty-page XORs).
  std::uniform_int_distribution<std::size_t> burst_dist(1, 64);
  std::size_t pos = 0;
  while (pos < len) {
    std::uniform_int_distribution<std::size_t> gap_dist(0, len / 4 + 1);
    pos += gap_dist(rng);
    if (pos >= len) break;
    std::size_t burst = std::min(burst_dist(rng), len - pos);
    for (std::size_t i = 0; i < burst; ++i)
      out[pos + i] = static_cast<std::byte>(byte_dist(rng) | 1);
    pos += burst;
  }
  return out;
}

void check_rle(const std::vector<std::byte>& data) {
  const auto encoded = rle_encode(data);
  EXPECT_EQ(encoded.size(), rle_encoded_size(data))
      << "size predictor disagrees with the encoder, len=" << data.size();
  const auto decoded = rle_decode(encoded, data.size());
  EXPECT_EQ(decoded, data) << "round trip failed, len=" << data.size();
}

TEST(RleFuzz, RoundTripRandomBuffers) {
  const int seeds = fuzz_seed_count();
  for (int seed = 0; seed < seeds; ++seed) {
    std::mt19937 rng(0xA5EDu + static_cast<unsigned>(seed));
    for (int i = 0; i < 64; ++i) check_rle(random_xor_page(rng));
  }
}

TEST(RleFuzz, AdversarialPatterns) {
  // Run lengths straddling every varint width boundary, in both the zero
  // and the literal position, plus degenerate shapes.
  const std::size_t boundaries[] = {0,   1,    2,     127,   128,
                                    129, 16383, 16384, 16385};
  for (std::size_t zeros : boundaries) {
    for (std::size_t lits : boundaries) {
      std::vector<std::byte> data(zeros + lits, std::byte{0});
      for (std::size_t i = 0; i < lits; ++i)
        data[zeros + i] = std::byte{0xAB};
      check_rle(data);
      // Literal run first, zero run second (forces a trailing zero run).
      std::vector<std::byte> flipped(lits + zeros, std::byte{0});
      for (std::size_t i = 0; i < lits; ++i) flipped[i] = std::byte{0xCD};
      check_rle(flipped);
    }
  }
  // Alternating bytes defeat both run kinds at once.
  std::vector<std::byte> alt(777);
  for (std::size_t i = 0; i < alt.size(); ++i)
    alt[i] = (i % 2) ? std::byte{0} : std::byte{0x5A};
  check_rle(alt);
}

TEST(RleFuzz, DecodeRejectsMalformed) {
  std::vector<std::byte> data(300, std::byte{0});
  for (std::size_t i = 100; i < 150; ++i) data[i] = std::byte{7};
  const auto encoded = rle_encode(data);
  // Truncation at every prefix either throws or cannot reproduce the
  // buffer (a shorter expected size is a different decode contract).
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    std::span<const std::byte> prefix(encoded.data(), cut);
    EXPECT_THROW(rle_decode(prefix, data.size()), Error) << "cut=" << cut;
  }
  // Declared output shorter than the streams decode to: overrun.
  EXPECT_THROW(rle_decode(encoded, data.size() - 1), Error);
}

TEST(RleFuzz, EncodeRecordPicksMinimumAndInverts) {
  const int seeds = fuzz_seed_count();
  for (int seed = 0; seed < seeds; ++seed) {
    std::mt19937 rng(0xD1FFu + static_cast<unsigned>(seed));
    for (int i = 0; i < 64; ++i) {
      const auto x = random_xor_page(rng);
      const auto rec = encode_record(x);

      // trim_len is the raw prefix through the last nonzero byte.
      std::size_t last_nonzero = 0;
      for (std::size_t j = 0; j < x.size(); ++j)
        if (x[j] != std::byte{0}) last_nonzero = j + 1;
      ASSERT_EQ(rec.trim_len, last_nonzero);

      // The chosen encoding is min(RLE, trim), ties to RLE.
      const std::size_t rle_size = rle_encoded_size(x);
      ASSERT_EQ(rec.bytes.size(), std::min<std::size_t>(rle_size, rec.trim_len))
          << "record did not pick the cheaper encoding";
      if (rec.raw) {
        ASSERT_LT(rec.bytes.size(), rle_size) << "raw must win ties";
      }

      // Either mode decodes back to x exactly.
      std::vector<std::byte> decoded;
      if (rec.raw) {
        decoded.assign(x.size(), std::byte{0});
        std::copy(rec.bytes.begin(), rec.bytes.end(), decoded.begin());
      } else {
        decoded = rle_decode(rec.bytes, x.size());
      }
      ASSERT_EQ(decoded, x);

      // The mode flag survives the wire length field.
      ASSERT_LT(rec.bytes.size(), kRawRecordFlag);
    }
  }
}

}  // namespace
}  // namespace vdc::checkpoint
