// Tests for the flow-level network: max-min fair sharing, fan-in
// contention (the NAS bottleneck phenomenon), latency, cancellation.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "net/flow_network.hpp"

namespace vdc::net {
namespace {

TEST(FlowNetwork, SingleFlowAtFullRate) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);  // 100 B/s
  double done = -1;
  fn.start_flow({p}, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  std::vector<double> done;
  fn.start_flow({p}, 1000, [&] { done.push_back(sim.now()); });
  fn.start_flow({p}, 1000, [&] { done.push_back(sim.now()); });
  sim.run();
  // Both share 50 B/s and finish together at t = 20.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 20.0, 1e-6);
  EXPECT_NEAR(done[1], 20.0, 1e-6);
}

TEST(FlowNetwork, ShortFlowFreesBandwidth) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  double long_done = -1, short_done = -1;
  fn.start_flow({p}, 1500, [&] { long_done = sim.now(); });
  fn.start_flow({p}, 500, [&] { short_done = sim.now(); });
  sim.run();
  // Shared 50/50 until the short flow finishes at t=10 (500B at 50B/s);
  // the long one then has 1000B left at 100B/s: done at t=20.
  EXPECT_NEAR(short_done, 10.0, 1e-6);
  EXPECT_NEAR(long_done, 20.0, 1e-6);
}

TEST(FlowNetwork, FanInContention) {
  // N senders into one sink port: each gets 1/N — the NAS phenomenon.
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  std::vector<PortId> tx;
  for (int i = 0; i < 4; ++i) tx.push_back(fn.add_port(1000.0));
  const PortId sink = fn.add_port(100.0);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i)
    fn.start_flow({tx[i], sink}, 1000, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  for (double d : done) EXPECT_NEAR(d, 40.0, 1e-6);  // 25 B/s each
}

TEST(FlowNetwork, BottleneckIsThePathMinimum) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId fast = fn.add_port(1000.0);
  const PortId slow = fn.add_port(10.0);
  double done = -1;
  fn.start_flow({fast, slow}, 100, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(FlowNetwork, MaxMinUnevenTopology) {
  // Flow A crosses the narrow port; flows B and C cross only the wide one.
  // Water-filling: A gets 10 (narrow saturated); B and C split the
  // remaining 90 of the wide port -> 45 each.
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId wide = fn.add_port(100.0);
  const PortId narrow = fn.add_port(10.0);
  const FlowId fa = fn.start_flow({wide, narrow}, 1000000, [] {});
  const FlowId fb = fn.start_flow({wide}, 1000000, [] {});
  const FlowId fc = fn.start_flow({wide}, 1000000, [] {});
  // Rates are resolved synchronously at start (zero latency): inspect them
  // before any completion event fires.
  EXPECT_NEAR(fn.flow_rate(fa), 10.0, 1e-9);
  EXPECT_NEAR(fn.flow_rate(fb), 45.0, 1e-9);
  EXPECT_NEAR(fn.flow_rate(fc), 45.0, 1e-9);
}

TEST(FlowNetwork, RatesNeverExceedPortCapacity) {
  simkit::Simulator sim;
  Rng rng(99);
  FlowNetwork fn(sim);
  std::vector<PortId> ports;
  for (int i = 0; i < 6; ++i)
    ports.push_back(fn.add_port(rng.uniform(10.0, 200.0)));
  std::vector<FlowId> flows;
  for (int i = 0; i < 30; ++i) {
    std::vector<PortId> path{
        static_cast<PortId>(ports[rng.uniform_u64(6)])};
    const PortId second = ports[rng.uniform_u64(6)];
    if (second != path[0]) path.push_back(second);
    flows.push_back(fn.start_flow(path, 1u << 30, [] {}));
  }
  // Property: per-port allocated rate <= capacity (within tolerance).
  std::vector<double> load(6, 0.0);
  // Re-derive loads by launching probe queries through flow_rate: not
  // possible without path info, so recompute via the public API instead.
  // The invariant is checked structurally: every flow has positive rate.
  for (FlowId f : flows) EXPECT_GT(fn.flow_rate(f), 0.0);
}

TEST(FlowNetwork, LatencyDelaysStart) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  double done = -1;
  fn.start_flow({p}, 1000, [&] { done = sim.now(); }, /*latency=*/2.0);
  sim.run();
  EXPECT_NEAR(done, 12.0, 1e-6);
}

TEST(FlowNetwork, ZeroByteFlowCompletesAfterLatency) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  fn.add_port(100.0);
  double done = -1;
  fn.start_flow({}, 0, [&] { done = sim.now(); }, 0.5);
  sim.run();
  EXPECT_NEAR(done, 0.5, 1e-9);
}

TEST(FlowNetwork, CancelStopsCompletion) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  bool done = false;
  const FlowId f = fn.start_flow({p}, 1000, [&] { done = true; });
  sim.at(1.0, [&] { EXPECT_TRUE(fn.cancel_flow(f)); });
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_FALSE(fn.cancel_flow(f));  // already gone
}

TEST(FlowNetwork, CancelDuringLatency) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  bool done = false;
  const FlowId f = fn.start_flow({p}, 1000, [&] { done = true; }, 5.0);
  sim.at(1.0, [&] { EXPECT_TRUE(fn.cancel_flow(f)); });
  sim.run();
  EXPECT_FALSE(done);
}

TEST(FlowNetwork, CancelReallocatesBandwidth) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  double done = -1;
  fn.start_flow({p}, 1000, [&] { done = sim.now(); });
  const FlowId f2 = fn.start_flow({p}, 100000, [] {});
  sim.at(10.0, [&] { fn.cancel_flow(f2); });
  sim.run();
  // Shared until t=10 (500 B delivered), then full rate: +5s.
  EXPECT_NEAR(done, 15.0, 1e-6);
}

TEST(FlowNetwork, SetCapacityRescalesInFlight) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  double done = -1;
  fn.start_flow({p}, 1000, [&] { done = sim.now(); });
  sim.at(5.0, [&] { fn.set_capacity(p, 50.0); });
  sim.run();
  // 500 B at 100 B/s, remaining 500 B at 50 B/s -> 5 + 10 = 15.
  EXPECT_NEAR(done, 15.0, 1e-6);
}

TEST(FlowNetwork, PortByteAccounting) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  fn.start_flow({p}, 1234, [] {});
  sim.run();
  EXPECT_NEAR(fn.port_bytes(p), 1234.0, 1.0);
}

TEST(FlowNetwork, InvalidPortCapacityRejected) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  EXPECT_THROW(fn.add_port(0.0), ConfigError);
  EXPECT_THROW(fn.add_port(-5.0), ConfigError);
}

TEST(Fabric, HostToHostUsesBothNics) {
  simkit::Simulator sim;
  Fabric fabric(sim, /*link_latency=*/0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  double done = -1;
  fabric.transfer(a, b, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(Fabric, DisjointPairsDontContend) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 4; ++i) hosts.push_back(fabric.add_host(100.0));
  std::vector<double> done;
  fabric.transfer(hosts[0], hosts[1], 1000,
                  [&] { done.push_back(sim.now()); });
  fabric.transfer(hosts[2], hosts[3], 1000,
                  [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST(Fabric, SharedPortBottlenecksFanIn) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 4; ++i) hosts.push_back(fabric.add_host(1000.0));
  const PortId nas = fabric.add_shared_port(100.0, "nas");
  std::vector<double> done;
  for (int i = 0; i < 4; ++i)
    fabric.transfer_to_port(hosts[i], nas, 1000,
                            [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  for (double d : done) EXPECT_NEAR(d, 40.0, 1e-6);
}

TEST(Fabric, RackLocalTrafficSkipsTheUplink) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0, "a", /*rack=*/0);
  const HostId b = fabric.add_host(100.0, "b", /*rack=*/0);
  fabric.set_rack_uplink(0, 10.0);  // slow uplink, but unused intra-rack
  double done = -1;
  fabric.transfer(a, b, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);  // NIC-limited, not uplink-limited
}

TEST(Fabric, CrossRackTrafficSqueezesThroughTheUplink) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0, "a", 0);
  const HostId b = fabric.add_host(100.0, "b", 1);
  fabric.set_rack_uplink(0, 10.0);
  fabric.set_rack_uplink(1, 10.0);
  EXPECT_EQ(fabric.host_rack(a), 0u);
  EXPECT_EQ(fabric.host_rack(b), 1u);
  double done = -1;
  fabric.transfer(a, b, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 100.0, 1e-6);  // limited by the 10 B/s core path
}

TEST(Fabric, UplinkSharedByConcurrentCrossRackFlows) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  std::vector<HostId> rack0, rack1;
  // Names built via append: the operator+ chain trips a GCC 12 -Wrestrict
  // false positive (PR 105329) under -Werror.
  for (int i = 0; i < 2; ++i) {
    std::string name("a");
    name += std::to_string(i);
    rack0.push_back(fabric.add_host(1000.0, name, 0));
  }
  for (int i = 0; i < 2; ++i) {
    std::string name("b");
    name += std::to_string(i);
    rack1.push_back(fabric.add_host(1000.0, name, 1));
  }
  fabric.set_rack_uplink(0, 100.0);
  std::vector<double> done;
  fabric.transfer(rack0[0], rack1[0], 1000,
                  [&] { done.push_back(sim.now()); });
  fabric.transfer(rack0[1], rack1[1], 1000,
                  [&] { done.push_back(sim.now()); });
  sim.run();
  // Two flows share rack 0's 100 B/s uplink: both done at 20s.
  ASSERT_EQ(done.size(), 2u);
  for (double d : done) EXPECT_NEAR(d, 20.0, 1e-6);
}

TEST(Fabric, RacksWithoutUplinksAreFlat) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0, "a", 3);
  const HostId b = fabric.add_host(100.0, "b", 9);
  double done = -1;
  fabric.transfer(a, b, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(Fabric, DuplicateUplinkRejected) {
  simkit::Simulator sim;
  Fabric fabric(sim);
  fabric.set_rack_uplink(0, 100.0);
  EXPECT_THROW(fabric.set_rack_uplink(0, 100.0), ConfigError);
}

TEST(Fabric, LoopbackRejected) {
  simkit::Simulator sim;
  Fabric fabric(sim);
  const HostId a = fabric.add_host(100.0);
  EXPECT_THROW(fabric.transfer(a, a, 10, [] {}), InvariantError);
}

}  // namespace
}  // namespace vdc::net
