// Tests for the flow-level network: max-min fair sharing, fan-in
// contention (the NAS bottleneck phenomenon), latency, cancellation.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/chunked_stream.hpp"
#include "net/fabric.hpp"
#include "net/flow_network.hpp"

namespace vdc::net {
namespace {

TEST(FlowNetwork, SingleFlowAtFullRate) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);  // 100 B/s
  double done = -1;
  fn.start_flow({p}, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  std::vector<double> done;
  fn.start_flow({p}, 1000, [&] { done.push_back(sim.now()); });
  fn.start_flow({p}, 1000, [&] { done.push_back(sim.now()); });
  sim.run();
  // Both share 50 B/s and finish together at t = 20.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 20.0, 1e-6);
  EXPECT_NEAR(done[1], 20.0, 1e-6);
}

TEST(FlowNetwork, ShortFlowFreesBandwidth) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  double long_done = -1, short_done = -1;
  fn.start_flow({p}, 1500, [&] { long_done = sim.now(); });
  fn.start_flow({p}, 500, [&] { short_done = sim.now(); });
  sim.run();
  // Shared 50/50 until the short flow finishes at t=10 (500B at 50B/s);
  // the long one then has 1000B left at 100B/s: done at t=20.
  EXPECT_NEAR(short_done, 10.0, 1e-6);
  EXPECT_NEAR(long_done, 20.0, 1e-6);
}

TEST(FlowNetwork, FanInContention) {
  // N senders into one sink port: each gets 1/N — the NAS phenomenon.
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  std::vector<PortId> tx;
  for (int i = 0; i < 4; ++i) tx.push_back(fn.add_port(1000.0));
  const PortId sink = fn.add_port(100.0);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i)
    fn.start_flow({tx[i], sink}, 1000, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  for (double d : done) EXPECT_NEAR(d, 40.0, 1e-6);  // 25 B/s each
}

TEST(FlowNetwork, BottleneckIsThePathMinimum) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId fast = fn.add_port(1000.0);
  const PortId slow = fn.add_port(10.0);
  double done = -1;
  fn.start_flow({fast, slow}, 100, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(FlowNetwork, MaxMinUnevenTopology) {
  // Flow A crosses the narrow port; flows B and C cross only the wide one.
  // Water-filling: A gets 10 (narrow saturated); B and C split the
  // remaining 90 of the wide port -> 45 each.
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId wide = fn.add_port(100.0);
  const PortId narrow = fn.add_port(10.0);
  const FlowId fa = fn.start_flow({wide, narrow}, 1000000, [] {});
  const FlowId fb = fn.start_flow({wide}, 1000000, [] {});
  const FlowId fc = fn.start_flow({wide}, 1000000, [] {});
  // Rates are resolved synchronously at start (zero latency): inspect them
  // before any completion event fires.
  EXPECT_NEAR(fn.flow_rate(fa), 10.0, 1e-9);
  EXPECT_NEAR(fn.flow_rate(fb), 45.0, 1e-9);
  EXPECT_NEAR(fn.flow_rate(fc), 45.0, 1e-9);
}

TEST(FlowNetwork, RatesNeverExceedPortCapacity) {
  simkit::Simulator sim;
  Rng rng(99);
  FlowNetwork fn(sim);
  std::vector<PortId> ports;
  for (int i = 0; i < 6; ++i)
    ports.push_back(fn.add_port(rng.uniform(10.0, 200.0)));
  std::vector<FlowId> flows;
  for (int i = 0; i < 30; ++i) {
    std::vector<PortId> path{
        static_cast<PortId>(ports[rng.uniform_u64(6)])};
    const PortId second = ports[rng.uniform_u64(6)];
    if (second != path[0]) path.push_back(second);
    flows.push_back(fn.start_flow(path, 1u << 30, [] {}));
  }
  // Property: per-port allocated rate <= capacity (within tolerance).
  std::vector<double> load(6, 0.0);
  // Re-derive loads by launching probe queries through flow_rate: not
  // possible without path info, so recompute via the public API instead.
  // The invariant is checked structurally: every flow has positive rate.
  for (FlowId f : flows) EXPECT_GT(fn.flow_rate(f), 0.0);
}

TEST(FlowNetwork, LatencyDelaysStart) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  double done = -1;
  fn.start_flow({p}, 1000, [&] { done = sim.now(); }, /*latency=*/2.0);
  sim.run();
  EXPECT_NEAR(done, 12.0, 1e-6);
}

TEST(FlowNetwork, ZeroByteFlowCompletesAfterLatency) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  fn.add_port(100.0);
  double done = -1;
  fn.start_flow({}, 0, [&] { done = sim.now(); }, 0.5);
  sim.run();
  EXPECT_NEAR(done, 0.5, 1e-9);
}

TEST(FlowNetwork, CancelStopsCompletion) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  bool done = false;
  const FlowId f = fn.start_flow({p}, 1000, [&] { done = true; });
  sim.at(1.0, [&] { EXPECT_TRUE(fn.cancel_flow(f)); });
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_FALSE(fn.cancel_flow(f));  // already gone
}

TEST(FlowNetwork, CancelDuringLatency) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  bool done = false;
  const FlowId f = fn.start_flow({p}, 1000, [&] { done = true; }, 5.0);
  sim.at(1.0, [&] { EXPECT_TRUE(fn.cancel_flow(f)); });
  sim.run();
  EXPECT_FALSE(done);
}

TEST(FlowNetwork, CancelReallocatesBandwidth) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  double done = -1;
  fn.start_flow({p}, 1000, [&] { done = sim.now(); });
  const FlowId f2 = fn.start_flow({p}, 100000, [] {});
  sim.at(10.0, [&] { fn.cancel_flow(f2); });
  sim.run();
  // Shared until t=10 (500 B delivered), then full rate: +5s.
  EXPECT_NEAR(done, 15.0, 1e-6);
}

TEST(FlowNetwork, SetCapacityRescalesInFlight) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  double done = -1;
  fn.start_flow({p}, 1000, [&] { done = sim.now(); });
  sim.at(5.0, [&] { fn.set_capacity(p, 50.0); });
  sim.run();
  // 500 B at 100 B/s, remaining 500 B at 50 B/s -> 5 + 10 = 15.
  EXPECT_NEAR(done, 15.0, 1e-6);
}

TEST(FlowNetwork, PortByteAccounting) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  fn.start_flow({p}, 1234, [] {});
  sim.run();
  EXPECT_NEAR(fn.port_bytes(p), 1234.0, 1.0);
}

TEST(FlowNetwork, InvalidPortCapacityRejected) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  EXPECT_THROW(fn.add_port(0.0), ConfigError);
  EXPECT_THROW(fn.add_port(-5.0), ConfigError);
}

TEST(Fabric, HostToHostUsesBothNics) {
  simkit::Simulator sim;
  Fabric fabric(sim, /*link_latency=*/0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  double done = -1;
  fabric.transfer(a, b, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(Fabric, DisjointPairsDontContend) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 4; ++i) hosts.push_back(fabric.add_host(100.0));
  std::vector<double> done;
  fabric.transfer(hosts[0], hosts[1], 1000,
                  [&] { done.push_back(sim.now()); });
  fabric.transfer(hosts[2], hosts[3], 1000,
                  [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST(Fabric, SharedPortBottlenecksFanIn) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 4; ++i) hosts.push_back(fabric.add_host(1000.0));
  const PortId nas = fabric.add_shared_port(100.0, "nas");
  std::vector<double> done;
  for (int i = 0; i < 4; ++i)
    fabric.transfer_to_port(hosts[i], nas, 1000,
                            [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  for (double d : done) EXPECT_NEAR(d, 40.0, 1e-6);
}

TEST(Fabric, RackLocalTrafficSkipsTheUplink) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0, "a", /*rack=*/0);
  const HostId b = fabric.add_host(100.0, "b", /*rack=*/0);
  fabric.set_rack_uplink(0, 10.0);  // slow uplink, but unused intra-rack
  double done = -1;
  fabric.transfer(a, b, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);  // NIC-limited, not uplink-limited
}

TEST(Fabric, CrossRackTrafficSqueezesThroughTheUplink) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0, "a", 0);
  const HostId b = fabric.add_host(100.0, "b", 1);
  fabric.set_rack_uplink(0, 10.0);
  fabric.set_rack_uplink(1, 10.0);
  EXPECT_EQ(fabric.host_rack(a), 0u);
  EXPECT_EQ(fabric.host_rack(b), 1u);
  double done = -1;
  fabric.transfer(a, b, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 100.0, 1e-6);  // limited by the 10 B/s core path
}

TEST(Fabric, UplinkSharedByConcurrentCrossRackFlows) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  std::vector<HostId> rack0, rack1;
  // Names built via append: the operator+ chain trips a GCC 12 -Wrestrict
  // false positive (PR 105329) under -Werror.
  for (int i = 0; i < 2; ++i) {
    std::string name("a");
    name += std::to_string(i);
    rack0.push_back(fabric.add_host(1000.0, name, 0));
  }
  for (int i = 0; i < 2; ++i) {
    std::string name("b");
    name += std::to_string(i);
    rack1.push_back(fabric.add_host(1000.0, name, 1));
  }
  fabric.set_rack_uplink(0, 100.0);
  std::vector<double> done;
  fabric.transfer(rack0[0], rack1[0], 1000,
                  [&] { done.push_back(sim.now()); });
  fabric.transfer(rack0[1], rack1[1], 1000,
                  [&] { done.push_back(sim.now()); });
  sim.run();
  // Two flows share rack 0's 100 B/s uplink: both done at 20s.
  ASSERT_EQ(done.size(), 2u);
  for (double d : done) EXPECT_NEAR(d, 20.0, 1e-6);
}

TEST(Fabric, RacksWithoutUplinksAreFlat) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0, "a", 3);
  const HostId b = fabric.add_host(100.0, "b", 9);
  double done = -1;
  fabric.transfer(a, b, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST(Fabric, DuplicateUplinkRejected) {
  simkit::Simulator sim;
  Fabric fabric(sim);
  fabric.set_rack_uplink(0, 100.0);
  EXPECT_THROW(fabric.set_rack_uplink(0, 100.0), ConfigError);
}

TEST(Fabric, LoopbackRejected) {
  simkit::Simulator sim;
  Fabric fabric(sim);
  const HostId a = fabric.add_host(100.0);
  EXPECT_THROW(fabric.transfer(a, a, 10, [] {}), InvariantError);
}

// Regression: the gauge used to be published as active_flows()+1 at start
// and never decremented, so it could only grow. It must track every start,
// completion and cancel — including latency-stage flows — and return to 0
// at quiescence.
TEST(Fabric, ActiveFlowsGaugeReturnsToZero) {
  simkit::Simulator sim;
  Fabric fabric(sim, /*link_latency=*/1.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  const HostId c = fabric.add_host(100.0);
  auto& metrics = sim.telemetry().metrics();

  fabric.transfer(a, b, 1000, [] {});
  fabric.transfer(c, b, 1000, [] {});
  const FlowId doomed = fabric.transfer(a, c, 1u << 20, [] {});
  // All three are in their latency stage right now; the gauge counts them.
  EXPECT_DOUBLE_EQ(metrics.value("net.active_flows"), 3.0);
  sim.at(2.0, [&] {
    EXPECT_DOUBLE_EQ(metrics.value("net.active_flows"), 3.0);
    fabric.cancel(doomed);
    EXPECT_DOUBLE_EQ(metrics.value("net.active_flows"), 2.0);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(metrics.value("net.active_flows"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.peak("net.active_flows"), 3.0);
}

TEST(Fabric, ActiveFlowsGaugeZeroAfterCancelDuringLatency) {
  simkit::Simulator sim;
  Fabric fabric(sim, /*link_latency=*/5.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  auto& metrics = sim.telemetry().metrics();
  const FlowId f = fabric.transfer(a, b, 1000, [] {});
  EXPECT_DOUBLE_EQ(metrics.value("net.active_flows"), 1.0);
  sim.at(1.0, [&] { EXPECT_TRUE(fabric.cancel(f)); });
  sim.run();
  EXPECT_DOUBLE_EQ(metrics.value("net.active_flows"), 0.0);
}

// Regression for the zero-share starvation at the water-filling 0-clamp: a
// denormal capacity (legal: > 0) used to underflow share = residual/n to
// exactly 0, tripping the "active flow with zero rate" invariant. The
// share floor keeps every unfixed flow strictly positive.
TEST(FlowNetwork, DenormalCapacityDoesNotStarveFlows) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  const FlowId fa = fn.start_flow({p}, 1000, [] {});
  const FlowId fb = fn.start_flow({p}, 1000, [] {});
  sim.at(1.0, [&] {
    fn.set_capacity(p, 5e-324);
    EXPECT_GT(fn.flow_rate(fa), 0.0);
    EXPECT_GT(fn.flow_rate(fb), 0.0);
    // Don't wait the ~1e302 seconds those rates imply.
    fn.cancel_flow(fa);
    fn.cancel_flow(fb);
  });
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(fn.active_flows(), 0u);
}

TEST(FlowNetwork, ShrinkingCapacityMidTransferStillCompletes) {
  simkit::Simulator sim;
  FlowNetwork fn(sim);
  const PortId p = fn.add_port(100.0);
  std::size_t done = 0;
  for (int i = 0; i < 3; ++i) fn.start_flow({p}, 1000, [&] { ++done; });
  // Squeeze the port through ever-smaller capacities mid-transfer; every
  // flow must keep a positive rate and eventually finish.
  sim.at(1.0, [&] { fn.set_capacity(p, 1.0); });
  sim.at(2.0, [&] { fn.set_capacity(p, 1e-200); });
  sim.at(3.0, [&] { fn.set_capacity(p, 200.0); });
  sim.run();
  EXPECT_EQ(done, 3u);
  EXPECT_EQ(fn.active_flows(), 0u);
}

TEST(ChunkPolicy, CountsAndSizes) {
  ChunkPolicy off;  // default: disabled
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.chunk_count(1000), 1u);
  EXPECT_EQ(off.chunk_size(1000, 0), 1000u);

  ChunkPolicy p{.chunk_bytes = 300, .pipeline_depth = 2};
  EXPECT_EQ(p.chunk_count(1000), 4u);
  EXPECT_EQ(p.chunk_size(1000, 0), 300u);
  EXPECT_EQ(p.chunk_size(1000, 3), 100u);  // tail
  EXPECT_EQ(p.chunk_count(900), 3u);
  EXPECT_EQ(p.chunk_size(900, 2), 300u);   // exact fit: no short tail
  EXPECT_EQ(p.chunk_count(0), 1u);
}

TEST(ChunkedStream, DisabledPolicyMatchesPlainTransferTiming) {
  // chunk_bytes == 0 must be event-for-event identical to Fabric::transfer.
  double plain_done = -1, stream_done = -1;
  {
    simkit::Simulator sim;
    Fabric fabric(sim, 1e-3);
    const HostId a = fabric.add_host(100.0);
    const HostId b = fabric.add_host(100.0);
    fabric.transfer(a, b, 1000, [&] { plain_done = sim.now(); });
    sim.run();
  }
  {
    simkit::Simulator sim;
    Fabric fabric(sim, 1e-3);
    const HostId a = fabric.add_host(100.0);
    const HostId b = fabric.add_host(100.0);
    ChunkedStream::start(fabric, a, b, 1000, ChunkPolicy{}, {},
                         [&] { stream_done = sim.now(); });
    sim.run();
  }
  EXPECT_DOUBLE_EQ(plain_done, stream_done);
}

TEST(ChunkedStream, DeliversEveryChunkOnceAndInOrderCounts) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  ChunkPolicy p{.chunk_bytes = 250, .pipeline_depth = 2};
  std::vector<ChunkedStream::Chunk> chunks;
  bool done = false;
  auto stream = ChunkedStream::start(
      fabric, a, b, 1000, p,
      [&](const ChunkedStream::Chunk& c) { chunks.push_back(c); },
      [&] { done = true; });
  EXPECT_EQ(stream->chunks_total(), 4u);
  sim.run();
  ASSERT_EQ(chunks.size(), 4u);
  Bytes total = 0;
  for (const auto& c : chunks) total += c.bytes;
  EXPECT_EQ(total, 1000u);
  EXPECT_TRUE(chunks.back().last);
  EXPECT_TRUE(done);
  EXPECT_TRUE(stream->done());
  // Chunk accounting drained back to zero.
  EXPECT_EQ(fabric.stream_chunks_inflight(), 0u);
  EXPECT_DOUBLE_EQ(sim.telemetry().metrics().value("net.chunks"), 4.0);
  EXPECT_DOUBLE_EQ(sim.telemetry().metrics().value("stream.inflight"), 0.0);
}

TEST(ChunkedStream, WindowBoundsInflightChunks) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  ChunkPolicy p{.chunk_bytes = 100, .pipeline_depth = 3};
  ChunkedStream::start(fabric, a, b, 1000, p, {});
  // Only the window is on the wire, not all 10 chunks.
  EXPECT_EQ(fabric.stream_chunks_inflight(), 3u);
  EXPECT_DOUBLE_EQ(sim.telemetry().metrics().peak("stream.inflight"), 3.0);
  sim.run();
  EXPECT_EQ(fabric.stream_chunks_inflight(), 0u);
}

TEST(ChunkedStream, PacedStreamWaitsForGrants) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  ChunkPolicy p{.chunk_bytes = 100, .pipeline_depth = 8};
  std::size_t delivered = 0;
  bool done = false;
  auto stream = ChunkedStream::start(
      fabric, a, b, 400, p, [&](const ChunkedStream::Chunk&) { ++delivered; },
      [&] { done = true; }, /*paced=*/true);
  EXPECT_EQ(fabric.stream_chunks_inflight(), 0u);  // nothing granted yet
  sim.at(1.0, [&] { stream->release_to(2); });
  // Both granted chunks launch together and share the path (fluid model):
  // 2 x 100 B over 100 B/s finish at t = 3.0.
  sim.at(3.5, [&] {
    EXPECT_EQ(delivered, 2u);
    EXPECT_FALSE(done);
    stream->release_all();
  });
  sim.run();
  EXPECT_EQ(delivered, 4u);
  EXPECT_TRUE(done);
}

TEST(ChunkedStream, CancelMidStreamStopsDeliveryAndDrainsGauges) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  ChunkPolicy p{.chunk_bytes = 100, .pipeline_depth = 2};
  std::size_t delivered = 0;
  bool done = false;
  auto stream = ChunkedStream::start(
      fabric, a, b, 1000, p, [&](const ChunkedStream::Chunk&) { ++delivered; },
      [&] { done = true; });
  sim.at(3.5, [&] { stream->cancel(); });
  sim.run();
  EXPECT_TRUE(stream->cancelled());
  EXPECT_FALSE(done);
  EXPECT_LT(delivered, 10u);
  EXPECT_EQ(fabric.stream_chunks_inflight(), 0u);
  EXPECT_DOUBLE_EQ(sim.telemetry().metrics().value("net.active_flows"), 0.0);
  EXPECT_DOUBLE_EQ(sim.telemetry().metrics().value("stream.inflight"), 0.0);
}

TEST(ChunkedStream, EnvOverrideParsesKnobs) {
  ::setenv("VDC_CHUNK_BYTES", "4096", 1);
  ::setenv("VDC_PIPELINE_DEPTH", "7", 1);
  const ChunkPolicy p = ChunkPolicy::env_override(ChunkPolicy{});
  ::unsetenv("VDC_CHUNK_BYTES");
  ::unsetenv("VDC_PIPELINE_DEPTH");
  EXPECT_EQ(p.chunk_bytes, 4096u);
  EXPECT_EQ(p.pipeline_depth, 7u);
  const ChunkPolicy untouched = ChunkPolicy::env_override(ChunkPolicy{});
  EXPECT_EQ(untouched.chunk_bytes, 0u);
  EXPECT_EQ(untouched.pipeline_depth, 4u);
}

}  // namespace
}  // namespace vdc::net
