// Tests for the common substrate: RNG determinism and distribution
// correctness, streaming statistics, histograms, units and assertions.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace vdc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(9);
  // All residues of a small modulus should appear with similar frequency.
  constexpr std::uint64_t n = 7;
  std::array<int, n> counts{};
  constexpr int trials = 70000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_u64(n)];
  for (auto c : counts)
    EXPECT_NEAR(static_cast<double>(c), trials / double(n),
                5.0 * std::sqrt(trials / double(n)));
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(10);
  const double rate = 0.25;
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.08);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.weibull(1.0, 2.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(13);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(14), b(14);
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(16);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 10);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Samples, PercentileOfEmptyReturnsZero) {
  // Exporters query histogram series that may never have been observed;
  // an empty set reads as 0.0 rather than tripping an invariant.
  Samples s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.percentile(0), 0.0);
  EXPECT_EQ(s.percentile(100), 0.0);
  EXPECT_EQ(s.median(), 0.0);
  s.add(7.0);
  EXPECT_EQ(s.median(), 7.0);
}

TEST(Histogram, BinningAndOutOfRangeCounters) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // below range: counted, not folded into bin 0
  h.add(50.0);  // above range: counted, not folded into bin 9
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
}

TEST(Histogram, RangeEdgesAndCounters) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);  // lo is inclusive: bin 0
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  h.add(10.0);  // hi is exclusive: overflow, not bin 9
  EXPECT_EQ(h.count(9), 0u);
  EXPECT_EQ(h.overflow(), 1u);
  h.add(std::nextafter(10.0, 0.0));  // largest in-range value: bin 9
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.low(), 0.0);
  EXPECT_DOUBLE_EQ(h.high(), 10.0);
}

TEST(Samples, PercentileInterpolationKat) {
  // Known-answer checks for the linear-interpolation rule:
  // rank = p/100 * (n-1), result = lerp(sorted[floor], sorted[ceil]).
  Samples s;
  s.add(30.0);
  s.add(10.0);
  s.add(20.0);
  s.add(40.0);  // sorted: 10 20 30 40, ranks 0..3
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 25.0);    // rank 1.5
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);    // rank 0.75
  EXPECT_NEAR(s.percentile(99.0), 39.7, 1e-12);  // rank 2.97
  EXPECT_NEAR(s.percentile(99.9), 39.97, 1e-12);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 10), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(milliseconds(40), 0.040);
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(hours(3), 10800.0);
  EXPECT_DOUBLE_EQ(days(2), 172800.0);
  EXPECT_EQ(kib(4), 4096u);
  EXPECT_EQ(mib(1), 1048576u);
  EXPECT_EQ(gib(1), 1073741824u);
  EXPECT_DOUBLE_EQ(gbit_per_s(8), 1e9);
}

TEST(Assert, MacrosThrowTypedErrors) {
  EXPECT_THROW(VDC_ASSERT(false), InvariantError);
  EXPECT_THROW(VDC_ASSERT_MSG(1 == 2, "nope"), InvariantError);
  EXPECT_THROW(VDC_REQUIRE(false, "bad config"), ConfigError);
  EXPECT_NO_THROW(VDC_ASSERT(true));
  EXPECT_NO_THROW(VDC_REQUIRE(true, "fine"));
}

TEST(Assert, MessageContainsLocation) {
  try {
    VDC_ASSERT_MSG(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom detail"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace vdc
