// Tests for the Section V analytical model: closed-form identities, the
// paper-literal typo bookkeeping, optimal-interval search, Monte-Carlo
// corroboration, and the per-scheme overhead submodels.

#include <gtest/gtest.h>

#include <cmath>

#include "model/analytic.hpp"
#include "model/montecarlo.hpp"
#include "model/overhead.hpp"

namespace vdc::model {
namespace {

constexpr double kLambda = 9.26e-5;  // paper's 3 h MTBF

TEST(Analytic, ExpectedFailuresIsGeometric) {
  // P(fail before span) = 1 - e^{-ls}; expected failed attempts before a
  // success is e^{ls} - 1.
  EXPECT_NEAR(expected_failures(0.1, 10.0), std::exp(1.0) - 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(expected_failures(0.1, 0.0), 0.0);
}

TEST(Analytic, TruncatedTtfBelowLimitAndMean) {
  const double lambda = 0.01;
  const double limit = 50.0;
  const double cond = expected_ttf_truncated(lambda, limit);
  EXPECT_GT(cond, 0.0);
  EXPECT_LT(cond, limit);        // conditioned on being below the limit
  EXPECT_LT(cond, 1.0 / lambda); // and below the unconditional mean
}

TEST(Analytic, TruncatedTtfMatchesMonteCarlo) {
  Rng rng(1);
  const double lambda = 0.02, limit = 30.0;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double t = rng.exponential(lambda);
    if (t < limit) stats.add(t);
  }
  EXPECT_NEAR(expected_ttf_truncated(lambda, limit), stats.mean(), 0.05);
}

TEST(Analytic, Eq1MatchesClassicRestartFormula) {
  for (double t : {hours(1), hours(12), days(2)}) {
    const double expected = std::expm1(kLambda * t) / kLambda;
    EXPECT_NEAR(expected_time_no_checkpoint(kLambda, t), expected,
                expected * 1e-12);
  }
}

TEST(Analytic, PaperLiteralEq1TyposCancel) {
  // The printed Eq. (1) has a wrong E[F] and a missing denominator that
  // exactly cancel: it equals the corrected closed form.
  for (double t : {hours(1), hours(6), days(1), days(2)}) {
    EXPECT_NEAR(paper_literal::eq1(kLambda, t),
                expected_time_no_checkpoint(kLambda, t),
                expected_time_no_checkpoint(kLambda, t) * 1e-9)
        << "T=" << t;
  }
}

TEST(Analytic, PaperLiteralEq3TypoDoesNotCancel) {
  // The printed Eq. (3) uses e^{lambda T} where the derivation needs
  // e^{lambda N}; for N << T it wildly overestimates.
  const double t = days(2), n = hours(1);
  const double printed = paper_literal::eq3(kLambda, t, n);
  const double corrected = expected_time_checkpoint(kLambda, t, n);
  EXPECT_GT(printed, 10.0 * corrected);
  // And they agree when N == T (the typo is then vacuous).
  EXPECT_NEAR(paper_literal::eq3(kLambda, t, t),
              expected_time_checkpoint(kLambda, t, t),
              expected_time_checkpoint(kLambda, t, t) * 1e-9);
}

TEST(Analytic, CheckpointingBeatsRestartForLongJobs) {
  const double t = days(2);
  EXPECT_LT(expected_time_checkpoint(kLambda, t, hours(1)),
            expected_time_no_checkpoint(kLambda, t));
}

TEST(Analytic, ZeroOverheadLimitRecoversEq3) {
  const double t = days(1), n = hours(2);
  EXPECT_NEAR(expected_time_checkpoint_overhead(kLambda, t, n, 0.0, 0.0),
              expected_time_checkpoint(kLambda, t, n), 1e-6);
}

TEST(Analytic, OverheadMonotonicity) {
  const double t = days(1), n = hours(1);
  const double base =
      expected_time_checkpoint_overhead(kLambda, t, n, 10.0, 60.0);
  EXPECT_GT(expected_time_checkpoint_overhead(kLambda, t, n, 20.0, 60.0),
            base);
  EXPECT_GT(expected_time_checkpoint_overhead(kLambda, t, n, 10.0, 120.0),
            base);
}

TEST(Analytic, RatioIsAboveOne) {
  EXPECT_GT(expected_time_ratio(kLambda, days(2), hours(1), 10.0, 60.0),
            1.0);
}

TEST(Analytic, OptimalIntervalNearYoungApproximation) {
  // For small lambda*Tov Young's N* = sqrt(2 Tov / lambda) is accurate.
  const double tov = 10.0;
  const auto opt = optimal_interval(kLambda, days(2), tov, 0.0);
  const double young = young_interval(kLambda, tov);
  EXPECT_NEAR(opt.interval, young, young * 0.1);
}

TEST(Analytic, OptimalIntervalIsAMinimum) {
  const double tov = 156.0, tr = 60.0, t = days(2);
  const auto opt = optimal_interval(kLambda, t, tov, tr);
  const double at = expected_time_ratio(kLambda, t, opt.interval, tov, tr);
  EXPECT_NEAR(at, opt.ratio, 1e-12);
  EXPECT_LT(at, expected_time_ratio(kLambda, t, opt.interval * 2, tov, tr));
  EXPECT_LT(at, expected_time_ratio(kLambda, t, opt.interval / 2, tov, tr));
}

TEST(Analytic, HigherOverheadPushesIntervalUp) {
  const auto cheap = optimal_interval(kLambda, days(2), 1.0, 60.0);
  const auto pricey = optimal_interval(kLambda, days(2), 150.0, 60.0);
  EXPECT_GT(pricey.interval, cheap.interval);
  EXPECT_GT(pricey.ratio, cheap.ratio);
}

TEST(Analytic, InvalidParamsRejected) {
  EXPECT_THROW(expected_time_no_checkpoint(0.0, 10.0), ConfigError);
  EXPECT_THROW(expected_time_checkpoint(0.1, 10.0, 0.0), ConfigError);
  EXPECT_THROW(expected_time_checkpoint_overhead(0.1, 10.0, 1.0, -1.0, 0.0),
               ConfigError);
  EXPECT_THROW(young_interval(0.1, 0.0), ConfigError);
}

TEST(MonteCarlo, NoCheckpointMatchesEq1) {
  McConfig config;
  config.lambda = 1.0 / 3600.0;
  config.total_work = hours(2);
  config.interval = 0.0;  // no checkpointing
  config.trials = 20000;
  auto stats = simulate_completion_times(config, Rng(2));
  const double analytic =
      expected_time_no_checkpoint(config.lambda, config.total_work);
  EXPECT_NEAR(stats.mean(), analytic, 4 * stats.ci95_halfwidth());
}

TEST(MonteCarlo, CheckpointWithOverheadMatchesModel) {
  McConfig config;
  config.lambda = 1.0 / 1800.0;
  config.total_work = hours(4);
  config.interval = minutes(20);
  config.overhead = 30.0;
  config.repair = 90.0;
  config.trials = 20000;
  auto stats = simulate_completion_times(config, Rng(3));
  const double analytic = expected_time_checkpoint_overhead(
      config.lambda, config.total_work, config.interval, config.overhead,
      config.repair);
  EXPECT_NEAR(stats.mean(), analytic, 4 * stats.ci95_halfwidth());
}

TEST(MonteCarlo, CheckpointingReducesTailRisk) {
  McConfig with;
  with.lambda = 1.0 / 1800.0;
  with.total_work = hours(4);
  with.interval = minutes(15);
  with.trials = 5000;
  McConfig without = with;
  without.interval = 0.0;
  auto w = simulate_completion_times(with, Rng(4));
  auto wo = simulate_completion_times(without, Rng(4));
  EXPECT_LT(w.mean(), wo.mean());
  EXPECT_LT(w.max(), wo.max());
}

TEST(Overhead, DiskfullDominatedByNasPath) {
  const Fig5Scenario fig5 = fig5_scenario();
  const auto costs = diskfull_costs(fig5.shape, fig5.hw);
  // 48 GiB through a 10 Gbit front-end plus a 400 MiB/s array write:
  // minutes, not milliseconds.
  EXPECT_GT(costs.overhead, 60.0);
  EXPECT_DOUBLE_EQ(costs.overhead, costs.latency);
  EXPECT_GT(costs.repair, fig5.hw.detection_time());
}

TEST(Overhead, DisklessOverlappedIsBaseOnly) {
  const Fig5Scenario fig5 = fig5_scenario();
  const auto costs = diskless_costs(fig5.shape, fig5.hw, true);
  EXPECT_DOUBLE_EQ(costs.overhead, fig5.hw.base_overhead);
  EXPECT_GT(costs.latency, costs.overhead);
}

TEST(Overhead, DisklessSyncStillBeatsDiskfull) {
  const Fig5Scenario fig5 = fig5_scenario();
  const auto diskless = diskless_costs(fig5.shape, fig5.hw, false);
  const auto diskfull = diskfull_costs(fig5.shape, fig5.hw);
  EXPECT_LT(diskless.overhead, diskfull.overhead);
  EXPECT_LT(diskless.latency, diskfull.latency);
}

TEST(Overhead, DisklessNetworkScalesWithClusterSize) {
  // Same total data, more nodes: the diskless exchange shrinks (~1/n) while
  // the NAS path stays constant — the paper's linear-speedup claim.
  HardwareProfile hw;
  ClusterShape small{4, 6, gib(1)};   // 24 VMs
  ClusterShape large{12, 2, gib(1)};  // 24 VMs
  const auto small_cost = diskless_costs(small, hw, false);
  const auto large_cost = diskless_costs(large, hw, false);
  EXPECT_LT(large_cost.latency, small_cost.latency);
  const auto nas_small = diskfull_costs(small, hw);
  const auto nas_large = diskfull_costs(large, hw);
  EXPECT_NEAR(nas_small.overhead, nas_large.overhead,
              nas_small.overhead * 0.01);
}

TEST(Overhead, Fig5ScenarioMatchesPaperParameters) {
  const Fig5Scenario fig5 = fig5_scenario();
  EXPECT_NEAR(fig5.lambda, 9.26e-5, 1e-7);
  EXPECT_DOUBLE_EQ(fig5.total_work, days(2));
  EXPECT_EQ(fig5.shape.nodes, 4u);
  EXPECT_EQ(fig5.shape.total_vms(), 12u);
  EXPECT_DOUBLE_EQ(fig5.hw.base_overhead, 0.040);
}

TEST(Overhead, Fig5HeadlineShape) {
  // The figure's qualitative claims: at optimal intervals the disk-full
  // baseline adds ~20% and diskless stays within a few percent, an
  // improvement in expected time to completion of roughly 18%.
  const Fig5Scenario fig5 = fig5_scenario();
  const auto df = diskfull_costs(fig5.shape, fig5.hw);
  const auto dl = diskless_costs(fig5.shape, fig5.hw, true);
  const auto opt_df = optimal_interval(fig5.lambda, fig5.total_work,
                                       df.overhead, df.repair);
  const auto opt_dl = optimal_interval(fig5.lambda, fig5.total_work,
                                       dl.overhead, dl.repair);
  EXPECT_GT(opt_df.ratio, 1.10);
  EXPECT_LT(opt_df.ratio, 1.30);
  EXPECT_LT(opt_dl.ratio, 1.03);
  const double reduction = 1.0 - opt_dl.ratio / opt_df.ratio;
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.25);
}

}  // namespace
}  // namespace vdc::model
