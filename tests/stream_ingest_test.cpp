// Streaming wire-plane coverage: the scatter-gather frame sources must be
// byte-identical to the materializing encoders, and the incremental
// readers must decode any chunking of a frame — down to 1-byte chunks and
// a split at every offset — to exactly the same folds, while rejecting
// every single-bit corruption and surviving a mid-record abort. Also
// covers the ChunkPolicy env-override validation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "checkpoint/delta.hpp"
#include "checkpoint/stream.hpp"
#include "checkpoint/wire.hpp"
#include "net/chunked_stream.hpp"

namespace vdc::checkpoint {
namespace {

constexpr Bytes kPage = 32;
constexpr std::size_t kPages = 6;

struct Fixture {
  std::vector<std::byte> base;  // previous committed image
  std::vector<std::byte> next;  // image after the epoch's writes
  CheckpointDelta cd;
  std::vector<std::byte> frame;  // encode_delta_frame(cd)
};

// A small frame with all three record shapes: sparse (RLE wins), dense
// writes near the page head (trim wins), and untouched pages.
Fixture make_fixture(unsigned seed) {
  Fixture fx;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  fx.base.resize(kPage * kPages);
  for (auto& b : fx.base) b = static_cast<std::byte>(byte_dist(rng));
  fx.next = fx.base;
  // Page 0: untouched. Page 1: one byte. Page 2: dense prefix (raw mode).
  // Page 3: untouched. Page 4: two sparse bursts. Page 5: full rewrite.
  fx.next[1 * kPage + 17] ^= std::byte{0x40};
  for (std::size_t i = 0; i < 20; ++i)
    fx.next[2 * kPage + i] = static_cast<std::byte>(byte_dist(rng) | 1);
  fx.next[4 * kPage + 2] ^= std::byte{0x01};
  fx.next[4 * kPage + 29] ^= std::byte{0x80};
  for (std::size_t i = 0; i < kPage; ++i)
    fx.next[5 * kPage + i] = static_cast<std::byte>(byte_dist(rng));

  const PageDelta delta = diff_images(fx.base, fx.next, kPage);
  fx.cd = CheckpointDelta{/*vm=*/7, /*epoch=*/3, /*base_epoch=*/2,
                          compress_delta(delta, fx.base)};
  fx.frame = encode_delta_frame(fx.cd);
  return fx;
}

DeltaFrameSource make_source(const Fixture& fx) {
  DeltaFrameSource src(fx.cd.vm, fx.cd.epoch, fx.cd.base_epoch, kPage);
  for (std::size_t i = 0; i < fx.cd.delta.page_count(); ++i) {
    const vm::PageIndex p = fx.cd.delta.pages[i];
    std::vector<std::byte> x(kPage);
    for (std::size_t j = 0; j < kPage; ++j)
      x[j] = fx.base[p * kPage + j] ^ fx.next[p * kPage + j];
    auto rec = encode_record(x);
    src.add_record(p, std::move(rec.bytes), rec.raw, rec.trim_len);
  }
  src.seal();
  return src;
}

TEST(StreamEncode, SourceMatchesMaterializingEncoder) {
  const auto fx = make_fixture(11);
  const auto src = make_source(fx);
  EXPECT_EQ(src.size(), fx.frame.size());
  EXPECT_EQ(src.bytes(), fx.frame) << "scatter-gather layout diverged from "
                                      "encode_delta_frame";
  // trim_frame_size prices the same records under trim-only encoding.
  Bytes trim = 0;
  for (std::size_t i = 0; i < fx.cd.delta.page_count(); ++i) {
    const vm::PageIndex p = fx.cd.delta.pages[i];
    std::vector<std::byte> x(kPage);
    for (std::size_t j = 0; j < kPage; ++j)
      x[j] = fx.base[p * kPage + j] ^ fx.next[p * kPage + j];
    trim += encode_record(x).trim_len;
  }
  EXPECT_EQ(src.trim_frame_size(),
            delta_frame_size(fx.cd.delta.page_count(), trim));
}

TEST(StreamEncode, ForEachRangeYieldsExactSlices) {
  const auto fx = make_fixture(12);
  const auto src = make_source(fx);
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::size_t> off_dist(0, fx.frame.size());
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t lo = off_dist(rng), hi = off_dist(rng);
    if (lo > hi) std::swap(lo, hi);
    std::vector<std::byte> got;
    src.for_each_range(lo, hi, [&](std::span<const std::byte> s) {
      got.insert(got.end(), s.begin(), s.end());
    });
    const std::vector<std::byte> want(fx.frame.begin() + lo,
                                      fx.frame.begin() + hi);
    ASSERT_EQ(got, want) << "range [" << lo << "," << hi << ")";
  }
}

// Feed `frame` to a DeltaReader in the given chunk sizes and return the
// base image with every fold XORed in.
std::vector<std::byte> fold_through(const Fixture& fx,
                                    const std::vector<std::size_t>& cuts) {
  std::vector<std::byte> work = fx.base;
  DeltaReader reader([&](vm::PageIndex page, std::size_t off,
                         std::span<const std::byte> lits) {
    ASSERT_LE(page * kPage + off + lits.size(), work.size());
    for (std::size_t i = 0; i < lits.size(); ++i)
      work[page * kPage + off + i] ^= lits[i];
  });
  std::size_t pos = 0;
  for (std::size_t cut : cuts) {
    reader.feed(std::span<const std::byte>(fx.frame.data() + pos, cut - pos));
    pos = cut;
  }
  reader.feed(
      std::span<const std::byte>(fx.frame.data() + pos, fx.frame.size() - pos));
  EXPECT_TRUE(reader.complete());
  EXPECT_EQ(reader.consumed(), fx.frame.size());
  EXPECT_EQ(reader.header().vm, fx.cd.vm);
  EXPECT_EQ(reader.header().epoch, fx.cd.epoch);
  EXPECT_EQ(reader.header().base_epoch, fx.cd.base_epoch);
  EXPECT_EQ(reader.header().page_size, kPage);
  return work;
}

TEST(DeltaIngest, OneByteChunksFoldToNewImage) {
  const auto fx = make_fixture(21);
  std::vector<std::size_t> cuts;
  for (std::size_t i = 1; i < fx.frame.size(); ++i) cuts.push_back(i);
  EXPECT_EQ(fold_through(fx, cuts), fx.next)
      << "1-byte chunking did not reproduce the image";
}

TEST(DeltaIngest, SplitAtEveryOffsetFoldsToNewImage) {
  const auto fx = make_fixture(22);
  for (std::size_t split = 0; split <= fx.frame.size(); ++split) {
    std::vector<std::size_t> cuts;
    if (split > 0 && split < fx.frame.size()) cuts.push_back(split);
    ASSERT_EQ(fold_through(fx, cuts), fx.next) << "split at " << split;
  }
}

TEST(DeltaIngest, MidRecordAbortIsSafe) {
  const auto fx = make_fixture(23);
  // Stop at every prefix; a cancelled stream just stops feeding. The
  // reader must neither throw nor claim completion.
  for (std::size_t stop : {std::size_t{1}, kDeltaFrameHeaderSize + 3,
                           fx.frame.size() / 2, fx.frame.size() - 1}) {
    std::size_t folded = 0;
    DeltaReader reader([&](vm::PageIndex, std::size_t,
                           std::span<const std::byte> lits) {
      folded += lits.size();
    });
    reader.feed(std::span<const std::byte>(fx.frame.data(), stop));
    EXPECT_FALSE(reader.complete()) << "stop=" << stop;
    EXPECT_EQ(reader.consumed(), stop);
    EXPECT_LE(folded, stop);  // folds never exceed bytes actually fed
  }
}

TEST(DeltaIngest, EverySingleBitFlipIsRejected) {
  const auto fx = make_fixture(24);
  for (std::size_t bit = 0; bit < fx.frame.size() * 8; ++bit) {
    auto bad = fx.frame;
    bad[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    DeltaReader reader(
        [](vm::PageIndex, std::size_t, std::span<const std::byte>) {});
    const auto feed_all = [&] {
      // Mixed chunk sizes so detection is exercised across carry states.
      std::size_t pos = 0;
      while (pos < bad.size()) {
        const std::size_t n = std::min<std::size_t>(13, bad.size() - pos);
        reader.feed(std::span<const std::byte>(bad.data() + pos, n));
        pos += n;
      }
      // A flip that only the payload CRC catches must not reach complete()
      // silently; all others throw mid-stream.
      ASSERT_FALSE(reader.complete());
    };
    EXPECT_THROW(feed_all(), WireError) << "bit " << bit << " accepted";
  }
}

TEST(DeltaIngest, TrailingBytesRejected) {
  const auto fx = make_fixture(25);
  DeltaReader reader(
      [](vm::PageIndex, std::size_t, std::span<const std::byte>) {});
  reader.feed(fx.frame);
  ASSERT_TRUE(reader.complete());
  const std::byte extra[] = {std::byte{0}};
  EXPECT_THROW(reader.feed(extra), WireError);
}

TEST(FrameReaderTest, ChunkedFullFrameReassembles) {
  Checkpoint cp;
  cp.vm = 9;
  cp.epoch = 4;
  cp.page_size = 64;
  std::mt19937 rng(31);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  cp.payload.resize(333);
  for (auto& b : cp.payload) b = static_cast<std::byte>(byte_dist(rng));
  const auto frame = encode_frame(cp);

  std::vector<std::byte> got(cp.payload.size(), std::byte{0});
  FrameReader reader([&](std::size_t off, std::span<const std::byte> bytes) {
    ASSERT_LE(off + bytes.size(), got.size());
    std::copy(bytes.begin(), bytes.end(), got.begin() + off);
  });
  std::size_t pos = 0;
  while (pos < frame.size()) {
    const std::size_t n = std::min<std::size_t>(7, frame.size() - pos);
    reader.feed(std::span<const std::byte>(frame.data() + pos, n));
    pos += n;
  }
  EXPECT_TRUE(reader.complete());
  EXPECT_EQ(reader.header().vm, cp.vm);
  EXPECT_EQ(reader.header().epoch, cp.epoch);
  EXPECT_EQ(reader.header().page_size, cp.page_size);
  EXPECT_EQ(got, cp.payload);

  // Payload corruption is caught even when the bytes stream through.
  auto bad = frame;
  bad[kFrameHeaderSize + 100] ^= std::byte{0x10};
  FrameReader bad_reader([](std::size_t, std::span<const std::byte>) {});
  EXPECT_THROW(bad_reader.feed(bad), WireError);
}

TEST(ChunkPolicyEnv, OverrideValidation) {
  net::ChunkPolicy base;
  base.chunk_bytes = 1024;
  base.pipeline_depth = 4;
  const auto with_env = [&](const char* chunk, const char* depth) {
    if (chunk) ::setenv("VDC_CHUNK_BYTES", chunk, 1);
    if (depth) ::setenv("VDC_PIPELINE_DEPTH", depth, 1);
    const auto out = net::ChunkPolicy::env_override(base);
    ::unsetenv("VDC_CHUNK_BYTES");
    ::unsetenv("VDC_PIPELINE_DEPTH");
    return out;
  };

  // Valid overrides apply.
  auto p = with_env("4096", "2");
  EXPECT_EQ(p.chunk_bytes, 4096u);
  EXPECT_EQ(p.pipeline_depth, 2u);
  // chunk_bytes=0 is a legal "disable chunking".
  EXPECT_EQ(with_env("0", nullptr).chunk_bytes, 0u);

  // Malformed values are ignored; the configured policy stands.
  EXPECT_EQ(with_env("notanumber", nullptr).chunk_bytes, 1024u);
  EXPECT_EQ(with_env("12abc", nullptr).chunk_bytes, 1024u);
  EXPECT_EQ(with_env("-3", nullptr).chunk_bytes, 1024u);
  EXPECT_EQ(with_env("", nullptr).chunk_bytes, 1024u);
  EXPECT_EQ(with_env(nullptr, "0").pipeline_depth, 4u);
  EXPECT_EQ(with_env(nullptr, "x").pipeline_depth, 4u);
  EXPECT_EQ(with_env(nullptr, "-1").pipeline_depth, 4u);
}

}  // namespace
}  // namespace vdc::checkpoint
