// Tests for the DVDC checkpoint protocol: parity correctness, incremental
// epochs, COW vs synchronous timing, abort safety, and the RDP scheme.

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/protocol.hpp"
#include "parity/xor.hpp"
#include "telemetry/sinks.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(1)};
  DvdcState state;

  Rig(std::uint32_t nodes, std::uint32_t vms_per_node,
      double write_rate = 200.0) {
    for (std::uint32_t n = 0; n < nodes; ++n) cluster.add_node();
    for (std::uint32_t n = 0; n < nodes; ++n) {
      for (std::uint32_t v = 0; v < vms_per_node; ++v) {
        cluster.boot_vm(n, kib(1), 32,
                        write_rate > 0
                            ? std::unique_ptr<vm::Workload>(
                                  std::make_unique<vm::UniformWorkload>(
                                      write_rate))
                            : std::make_unique<vm::IdleWorkload>());
      }
    }
  }

  PlacedPlan plan(ParityScheme scheme = ParityScheme::Raid5,
                  std::uint32_t k = 0) {
    PlannerConfig pc;
    pc.group_size = k;
    return PlacedPlan::make(GroupPlanner(pc).plan(cluster), cluster, scheme);
  }

  EpochStats run_one(DvdcCoordinator& coord, const PlacedPlan& placed,
                     checkpoint::Epoch epoch) {
    std::optional<EpochStats> stats;
    coord.run_epoch(placed, epoch,
                    [&](const EpochStats& s) { stats = s; });
    sim.run();
    EXPECT_TRUE(stats.has_value());
    return *stats;
  }
};

// Verify every group's committed parity against a from-scratch encode of
// the members' committed checkpoints.
void expect_parity_consistent(Rig& rig, const PlacedPlan& placed) {
  const auto epoch = rig.state.committed_epoch();
  for (const auto& group : placed.plan.groups) {
    const auto* record = rig.state.parity(group.id);
    ASSERT_NE(record, nullptr) << "group " << group.id;
    ASSERT_EQ(record->epoch, epoch);
    auto codec = make_codec(record->scheme, group.members.size());
    std::vector<parity::Block> padded;
    std::vector<parity::BlockView> views;
    for (vm::VmId m : group.members) {
      const auto loc = rig.cluster.locate(m);
      ASSERT_TRUE(loc.has_value());
      const auto* cp = rig.state.node_store(*loc).find(m, epoch);
      ASSERT_NE(cp, nullptr) << "vm " << m;
      padded.push_back(cp->padded_payload(record->block_size));
    }
    for (const auto& p : padded) views.emplace_back(p);
    const auto expect = codec->encode(views);
    ASSERT_EQ(expect.size(), record->blocks.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
      EXPECT_EQ(expect[i], record->blocks[i])
          << "group " << group.id << " parity " << i;
  }
}

TEST(Protocol, FirstEpochBuildsCorrectParity) {
  Rig rig(4, 3);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  auto stats = rig.run_one(coord, placed, 1);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_TRUE(stats.full_exchange);
  EXPECT_EQ(stats.groups, 4u);
  EXPECT_EQ(rig.state.committed_epoch(), 1u);
  expect_parity_consistent(rig, placed);
}

TEST(Protocol, CheckpointContentIsTheCut) {
  Rig rig(3, 1, 0.0);  // idle guests
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  std::vector<std::vector<std::byte>> at_cut;
  for (vm::VmId vmid : rig.cluster.all_vms())
    at_cut.push_back(rig.cluster.machine(vmid).image().flatten());
  rig.run_one(coord, placed, 1);
  std::size_t i = 0;
  for (vm::VmId vmid : rig.cluster.all_vms()) {
    const auto loc = rig.cluster.locate(vmid);
    const auto* cp = rig.state.node_store(*loc).find(vmid, 1);
    ASSERT_NE(cp, nullptr);
    EXPECT_EQ(cp->payload(), at_cut[i++]);
  }
}

TEST(Protocol, IncrementalEpochsKeepParityExact) {
  Rig rig(4, 3, /*write_rate=*/400.0);
  ProtocolConfig config;
  config.incremental = true;
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state, config);
  auto placed = rig.plan();

  auto s1 = rig.run_one(coord, placed, 1);
  EXPECT_TRUE(s1.full_exchange);

  for (checkpoint::Epoch e = 2; e <= 4; ++e) {
    rig.cluster.advance_workloads(1.0);  // dirty some pages
    auto stats = rig.run_one(coord, placed, e);
    EXPECT_FALSE(stats.full_exchange) << "epoch " << e;
    // Deltas move fewer bytes than full images.
    EXPECT_LT(stats.bytes_shipped, s1.bytes_shipped) << "epoch " << e;
    expect_parity_consistent(rig, placed);
  }
}

TEST(Protocol, IncrementalDisabledShipsFullEveryEpoch) {
  Rig rig(3, 2, 100.0);
  ProtocolConfig config;
  config.incremental = false;
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state, config);
  auto placed = rig.plan();
  rig.run_one(coord, placed, 1);
  rig.cluster.advance_workloads(1.0);
  auto s2 = rig.run_one(coord, placed, 2);
  EXPECT_TRUE(s2.full_exchange);
  expect_parity_consistent(rig, placed);
}

TEST(Protocol, CowOverheadIsBaseOnly) {
  Rig rig(4, 3);
  ProtocolConfig config;
  config.copy_on_write = true;
  config.base_overhead = 0.040;
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state, config);
  auto placed = rig.plan();
  auto stats = rig.run_one(coord, placed, 1);
  EXPECT_NEAR(stats.overhead, 0.040, 1e-9);
  EXPECT_GT(stats.latency, stats.overhead);
}

TEST(Protocol, SynchronousOverheadEqualsLatency) {
  Rig rig(4, 3);
  ProtocolConfig config;
  config.copy_on_write = false;
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state, config);
  auto placed = rig.plan();
  auto stats = rig.run_one(coord, placed, 1);
  EXPECT_NEAR(stats.overhead, stats.latency, 1e-9);
}

TEST(Protocol, GuestsResumeAfterCommit) {
  Rig rig(3, 2);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  rig.run_one(coord, placed, 1);
  for (vm::VmId vmid : rig.cluster.all_vms())
    EXPECT_EQ(rig.cluster.machine(vmid).state(), vm::VmState::Running);
}

TEST(Protocol, OldEpochGarbageCollected) {
  Rig rig(3, 2, 100.0);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  rig.run_one(coord, placed, 1);
  rig.cluster.advance_workloads(1.0);
  rig.run_one(coord, placed, 2);
  for (vm::VmId vmid : rig.cluster.all_vms()) {
    const auto loc = rig.cluster.locate(vmid);
    EXPECT_EQ(rig.state.node_store(*loc).find(vmid, 1), nullptr);
    EXPECT_NE(rig.state.node_store(*loc).find(vmid, 2), nullptr);
  }
}

TEST(Protocol, AbortLeavesCommittedEpochIntact) {
  Rig rig(4, 3, 100.0);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  rig.run_one(coord, placed, 1);
  const auto committed = rig.state.committed_epoch();

  // Start epoch 2 and abort it mid-flight.
  rig.cluster.advance_workloads(1.0);
  bool committed2 = false;
  coord.run_epoch(placed, 2, [&](const EpochStats&) { committed2 = true; });
  rig.sim.run(5);  // a few events in: capture done, exchange under way
  EXPECT_TRUE(coord.epoch_in_flight());
  coord.abort();
  rig.sim.run();

  EXPECT_FALSE(committed2);
  EXPECT_EQ(rig.state.committed_epoch(), committed);
  // Epoch-2 captures were discarded; epoch-1 checkpoints and parity are
  // still a consistent stripe.
  for (vm::VmId vmid : rig.cluster.all_vms()) {
    const auto loc = rig.cluster.locate(vmid);
    EXPECT_EQ(rig.state.node_store(*loc).find(vmid, 2), nullptr);
    EXPECT_NE(rig.state.node_store(*loc).find(vmid, 1), nullptr);
  }
  expect_parity_consistent(rig, placed);
}

TEST(Protocol, EpochAfterAbortWorks) {
  Rig rig(3, 2, 100.0);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  rig.run_one(coord, placed, 1);
  rig.cluster.advance_workloads(1.0);
  coord.run_epoch(placed, 2, [](const EpochStats&) {});
  rig.sim.run(3);
  coord.abort();
  rig.sim.run();
  // A later epoch (same number re-used is fine: it never committed).
  rig.cluster.advance_workloads(1.0);
  auto stats = rig.run_one(coord, placed, 2);
  EXPECT_EQ(rig.state.committed_epoch(), 2u);
  expect_parity_consistent(rig, placed);
  (void)stats;
}

TEST(Protocol, RdpSchemeBuildsTwoParityBlocks) {
  Rig rig(5, 2);
  ProtocolConfig config;
  config.scheme = ParityScheme::Rdp;
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state, config);
  auto placed = rig.plan(ParityScheme::Rdp, /*k=*/3);
  rig.run_one(coord, placed, 1);
  for (const auto& group : placed.plan.groups) {
    const auto* record = rig.state.parity(group.id);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->scheme, ParityScheme::Rdp);
    EXPECT_EQ(record->blocks.size(), 2u);
    EXPECT_EQ(record->holders.size(), 2u);
    EXPECT_NE(record->holders[0], record->holders[1]);
  }
  expect_parity_consistent(rig, placed);
}

TEST(Protocol, RdpIncrementalEpochIsExact) {
  // The parity-delta path covers RDP too: epoch 2 ships only deltas,
  // folded into the standing row/diagonal blocks through the update
  // geometry, and the result must equal a from-scratch re-encode.
  Rig rig(5, 2, 100.0);
  ProtocolConfig config;
  config.scheme = ParityScheme::Rdp;
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state, config);
  auto placed = rig.plan(ParityScheme::Rdp, 3);
  auto s1 = rig.run_one(coord, placed, 1);
  EXPECT_TRUE(s1.full_exchange);
  EXPECT_EQ(s1.delta_bytes, 0u);
  rig.cluster.advance_workloads(1.0);
  auto s2 = rig.run_one(coord, placed, 2);
  EXPECT_FALSE(s2.full_exchange);
  EXPECT_LT(s2.bytes_shipped, s1.bytes_shipped);
  EXPECT_EQ(s2.delta_bytes, s2.bytes_shipped);
  expect_parity_consistent(rig, placed);
  // Further epochs keep folding deltas over the same standing blocks.
  rig.cluster.advance_workloads(1.0);
  auto s3 = rig.run_one(coord, placed, 3);
  EXPECT_FALSE(s3.full_exchange);
  expect_parity_consistent(rig, placed);
}

TEST(Protocol, MemoryAccountingTracksStripes) {
  Rig rig(4, 3);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  EXPECT_EQ(rig.state.memory_bytes(), 0u);
  rig.run_one(coord, placed, 1);
  // 12 checkpoints + 4 parity blocks of 32 KiB each.
  EXPECT_EQ(rig.state.memory_bytes(), 16u * kib(1) * 32);
}

TEST(Protocol, EpochMustAdvance) {
  Rig rig(3, 1);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  rig.run_one(coord, placed, 1);
  EXPECT_THROW(coord.run_epoch(placed, 1, [](const EpochStats&) {}),
               ConfigError);
}

TEST(Protocol, OneEpochAtATime) {
  Rig rig(3, 1);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  coord.run_epoch(placed, 1, [](const EpochStats&) {});
  EXPECT_THROW(coord.run_epoch(placed, 2, [](const EpochStats&) {}),
               ConfigError);
  rig.sim.run();
}

TEST(Protocol, CompressedFullExchangeShrinksSparseImages) {
  // Freshly booted guests with 75% untouched (zero) pages: RLE'd full
  // exchange ships roughly the touched quarter.
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(77));
  cluster.add_node();
  cluster.add_node();
  cluster.add_node();
  cluster.set_boot_zero_fraction(0.75);
  for (int n = 0; n < 3; ++n)
    cluster.boot_vm(n, kib(1), 64, std::make_unique<vm::IdleWorkload>());
  DvdcState state;
  ProtocolConfig pc;
  pc.compress_full = true;
  DvdcCoordinator coord(sim, cluster, state, pc);
  auto placed = PlacedPlan::make(GroupPlanner().plan(cluster), cluster);
  EpochStats stats;
  coord.run_epoch(placed, 1, [&](const EpochStats& s) { stats = s; });
  sim.run();
  const Bytes full = 3ull * kib(1) * 64;
  EXPECT_LT(stats.bytes_shipped, full / 2);
  EXPECT_GT(stats.bytes_shipped, full / 10);
  // Parity content is still exact.
  for (const auto& group : placed.plan.groups) {
    const auto* record = state.parity(group.id);
    ASSERT_NE(record, nullptr);
    EXPECT_FALSE(record->blocks[0].empty());
  }
}

TEST(Protocol, IncompressibleImagesInflateSlightly) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(78));
  for (int n = 0; n < 3; ++n) cluster.add_node();
  for (int n = 0; n < 3; ++n)
    cluster.boot_vm(n, kib(1), 64, std::make_unique<vm::IdleWorkload>());
  DvdcState state;
  ProtocolConfig pc;
  pc.compress_full = true;
  DvdcCoordinator coord(sim, cluster, state, pc);
  auto placed = PlacedPlan::make(GroupPlanner().plan(cluster), cluster);
  EpochStats stats;
  coord.run_epoch(placed, 1, [&](const EpochStats& s) { stats = s; });
  sim.run();
  const Bytes full = 3ull * kib(1) * 64;
  EXPECT_GE(stats.bytes_shipped, full);            // no free lunch
  EXPECT_LT(stats.bytes_shipped, full * 102 / 100);  // ~2% cap
}

TEST(Protocol, EpochEmitsSixPhaseSpansInOrder) {
  Rig rig(4, 3);
  auto sink = std::make_shared<telemetry::InMemorySink>();
  rig.sim.telemetry().set_enabled(true);
  rig.sim.telemetry().add_sink(sink);

  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  auto stats = rig.run_one(coord, placed, 1);

  // Exactly one span per phase, emitted in protocol order, all children of
  // the one root "epoch" span.
  const char* phases[] = {"epoch.quiesce",  "epoch.capture", "epoch.resume",
                          "epoch.exchange", "epoch.parity",  "epoch.commit"};
  const auto roots = sink->named("epoch");
  ASSERT_EQ(roots.size(), 1u);
  std::vector<telemetry::SpanRecord> seen;
  for (const auto& span : sink->spans())
    if (span.name.rfind("epoch.", 0) == 0 && span.name != "epoch.group")
      seen.push_back(span);
  ASSERT_EQ(seen.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(seen[i].name, phases[i]);
    EXPECT_EQ(seen[i].parent, roots[0].id);
  }

  // The phases partition [start, commit]: contiguous, and their durations
  // sum to the epoch latency, with quiesce+capture equal to the overhead.
  for (std::size_t i = 1; i < 6; ++i)
    EXPECT_DOUBLE_EQ(seen[i].start, seen[i - 1].end) << phases[i];
  EXPECT_DOUBLE_EQ(seen[0].start, roots[0].start);
  EXPECT_DOUBLE_EQ(seen[5].end, roots[0].end);
  EXPECT_NEAR(seen[0].duration() + seen[1].duration(), stats.overhead, 1e-9);
  double total = 0.0;
  for (const auto& span : seen) total += span.duration();
  EXPECT_NEAR(total, stats.latency, 1e-9);
}

TEST(Protocol, DisabledTelemetryEmitsNoSpans) {
  Rig rig(4, 3);
  auto sink = std::make_shared<telemetry::InMemorySink>();
  rig.sim.telemetry().add_sink(sink);  // tracing left disabled

  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  auto stats = rig.run_one(coord, placed, 1);
  EXPECT_TRUE(sink->spans().empty());
  // The registry still drives the stats façade.
  EXPECT_GT(stats.bytes_shipped, 0u);
}

TEST(Protocol, ShippedBytesReflectCompression) {
  // With a tiny dirty set, the compressed wire bytes should be far below
  // both the full image and the raw dirty pages.
  Rig rig(3, 1, 0.0);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  auto placed = rig.plan();
  auto s1 = rig.run_one(coord, placed, 1);

  // One 8-byte write into one page of each VM.
  for (vm::VmId vmid : rig.cluster.all_vms()) {
    std::vector<std::byte> w(8, std::byte{0x77});
    rig.cluster.machine(vmid).image().write(3, 10, w);
  }
  auto s2 = rig.run_one(coord, placed, 2);
  EXPECT_LT(s2.bytes_shipped, s1.bytes_shipped / 10);
  EXPECT_EQ(s2.raw_dirty_bytes, 3u * kib(1));  // one page per VM
  expect_parity_consistent(rig, placed);
}

}  // namespace
}  // namespace vdc::core
