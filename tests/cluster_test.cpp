// Tests for the cluster manager, name service and heartbeat detector.

#include <gtest/gtest.h>

#include "cluster/heartbeat.hpp"
#include "cluster/manager.hpp"
#include "vm/workload.hpp"

namespace vdc::cluster {
namespace {

std::unique_ptr<vm::Workload> idle() {
  return std::make_unique<vm::IdleWorkload>();
}

struct Rig {
  simkit::Simulator sim;
  ClusterManager cluster{sim, Rng(1)};
  Rig(std::uint32_t nodes = 3) {
    for (std::uint32_t i = 0; i < nodes; ++i) cluster.add_node();
  }
};

TEST(ClusterManager, AddAndQueryNodes) {
  Rig rig;
  EXPECT_EQ(rig.cluster.node_count(), 3u);
  EXPECT_EQ(rig.cluster.alive_nodes(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(rig.cluster.node(0).alive());
  EXPECT_EQ(rig.cluster.node(1).name(), "node1");
  EXPECT_THROW(rig.cluster.node(9), ConfigError);
}

TEST(ClusterManager, BootPlacesAndBinds) {
  Rig rig;
  const vm::VmId id = rig.cluster.boot_vm(1, kib(4), 16, idle());
  EXPECT_EQ(rig.cluster.locate(id), 1u);
  EXPECT_EQ(rig.cluster.names().resolve(id), 1u);
  EXPECT_TRUE(rig.cluster.node(1).hypervisor().hosts(id));
  EXPECT_EQ(rig.cluster.all_vms(), (std::vector<vm::VmId>{id}));
}

TEST(ClusterManager, KillNodeLosesItsVmsOnly) {
  Rig rig;
  const auto a = rig.cluster.boot_vm(0, kib(4), 8, idle());
  const auto b = rig.cluster.boot_vm(1, kib(4), 8, idle());
  std::vector<vm::VmId> reported;
  rig.cluster.set_on_failure(
      [&](NodeId, const std::vector<vm::VmId>& lost) { reported = lost; });
  rig.cluster.kill_node(1);
  EXPECT_EQ(reported, (std::vector<vm::VmId>{b}));
  EXPECT_FALSE(rig.cluster.node(1).alive());
  EXPECT_FALSE(rig.cluster.locate(b).has_value());
  EXPECT_FALSE(rig.cluster.names().resolve(b).has_value());
  EXPECT_TRUE(rig.cluster.locate(a).has_value());
  EXPECT_EQ(rig.cluster.alive_nodes(), (std::vector<NodeId>{0, 2}));
  EXPECT_THROW(rig.cluster.kill_node(1), ConfigError);  // already dead
}

TEST(ClusterManager, ReviveRestoresEmptyNode) {
  Rig rig;
  rig.cluster.boot_vm(2, kib(4), 8, idle());
  rig.cluster.kill_node(2);
  rig.cluster.revive_node(2);
  EXPECT_TRUE(rig.cluster.node(2).alive());
  EXPECT_EQ(rig.cluster.node(2).hypervisor().vm_count(), 0u);
  EXPECT_THROW(rig.cluster.revive_node(2), ConfigError);  // not dead
}

TEST(ClusterManager, PlaceRebindsName) {
  Rig rig;
  const auto id = rig.cluster.boot_vm(0, kib(4), 8, idle());
  auto machine = rig.cluster.node(0).hypervisor().evict(id);
  rig.cluster.place(std::move(machine), 2);
  EXPECT_EQ(rig.cluster.locate(id), 2u);
  EXPECT_EQ(rig.cluster.names().resolve(id), 2u);
  EXPECT_EQ(rig.cluster.names().rebind_count(), 1u);
}

TEST(ClusterManager, BootOnDeadNodeRejected) {
  Rig rig;
  rig.cluster.kill_node(0);
  EXPECT_THROW(rig.cluster.boot_vm(0, kib(4), 8, idle()), ConfigError);
}

TEST(ClusterManager, AdvanceWorkloadsSkipsDeadNodes) {
  Rig rig;
  const auto a = rig.cluster.boot_vm(0, kib(4), 8,
                                     std::make_unique<vm::UniformWorkload>(
                                         100.0));
  rig.cluster.advance_workloads(1.0);
  EXPECT_GT(rig.cluster.machine(a).image().dirty_count(), 0u);
  EXPECT_DOUBLE_EQ(rig.cluster.machine(a).cpu_time(), 1.0);
}

TEST(ClusterManager, GuestBytesAccounting) {
  Rig rig;
  rig.cluster.boot_vm(0, kib(4), 16, idle());
  rig.cluster.boot_vm(0, kib(4), 16, idle());
  EXPECT_EQ(rig.cluster.node_guest_bytes(0), 2 * kib(4) * 16);
  EXPECT_EQ(rig.cluster.node_guest_bytes(1), 0u);
}

TEST(NameService, StableDerivedAddress) {
  EXPECT_EQ(NameService::address(1), "10.0.0.1");
  EXPECT_EQ(NameService::address(0x010203), "10.1.2.3");
}

TEST(Heartbeat, DetectsFailureWithinTimeout) {
  Rig rig;
  HeartbeatConfig config;
  config.period = 0.1;
  config.timeout = 0.5;
  HeartbeatDetector detector(rig.sim, rig.cluster, config);
  std::optional<std::pair<NodeId, SimTime>> detected;
  detector.start([&](NodeId n, SimTime latency) {
    detected = {n, latency};
  });
  rig.sim.at(2.0, [&] {
    rig.cluster.kill_node(1);
    detector.note_failure(1, rig.sim.now());
  });
  rig.sim.run_until(5.0);
  detector.stop();
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(detected->first, 1u);
  // Latency within one heartbeat period of the timeout (the last
  // heartbeat may have landed just before the crash).
  EXPECT_GE(detected->second, 0.4 - 1e-9);
  EXPECT_LE(detected->second, 0.6 + 1e-9);
  EXPECT_EQ(detector.detections(), 1u);
}

TEST(Heartbeat, NoFalsePositivesOnHealthyCluster) {
  Rig rig;
  HeartbeatDetector detector(rig.sim, rig.cluster);
  int detections = 0;
  detector.start([&](NodeId, SimTime) { ++detections; });
  rig.sim.run_until(10.0);
  detector.stop();
  EXPECT_EQ(detections, 0);
}

TEST(Heartbeat, ReportsEachFailureOnce) {
  Rig rig;
  HeartbeatConfig config;
  config.period = 0.1;
  config.timeout = 0.3;
  HeartbeatDetector detector(rig.sim, rig.cluster, config);
  int detections = 0;
  detector.start([&](NodeId, SimTime) { ++detections; });
  rig.sim.at(1.0, [&] {
    rig.cluster.kill_node(0);
    detector.note_failure(0, rig.sim.now());
  });
  rig.sim.run_until(10.0);
  detector.stop();
  EXPECT_EQ(detections, 1);
}

TEST(Heartbeat, RepairReArms) {
  Rig rig;
  HeartbeatConfig config;
  config.period = 0.1;
  config.timeout = 0.3;
  HeartbeatDetector detector(rig.sim, rig.cluster, config);
  std::vector<SimTime> detections;
  detector.start([&](NodeId, SimTime) { detections.push_back(rig.sim.now()); });
  rig.sim.at(1.0, [&] {
    rig.cluster.kill_node(0);
    detector.note_failure(0, rig.sim.now());
  });
  rig.sim.at(3.0, [&] {
    rig.cluster.revive_node(0);
    detector.note_repair(0);
  });
  rig.sim.at(5.0, [&] {
    rig.cluster.kill_node(0);
    detector.note_failure(0, rig.sim.now());
  });
  rig.sim.run_until(10.0);
  detector.stop();
  EXPECT_EQ(detections.size(), 2u);
}

TEST(Heartbeat, StopAndRestartLifecycle) {
  Rig rig;
  HeartbeatConfig config;
  config.period = 0.1;
  config.timeout = 0.3;
  HeartbeatDetector detector(rig.sim, rig.cluster, config);
  int detections = 0;
  detector.start([&](NodeId, SimTime) { ++detections; });
  rig.sim.run_until(1.0);
  detector.stop();
  // While stopped, a failure goes unnoticed.
  rig.cluster.kill_node(2);
  detector.note_failure(2, rig.sim.now());
  rig.sim.run_until(3.0);
  EXPECT_EQ(detections, 0);
  // Restarting picks the failure up.
  detector.start([&](NodeId n, SimTime) {
    EXPECT_EQ(n, 2u);
    ++detections;
  });
  rig.sim.run_until(5.0);
  detector.stop();
  EXPECT_EQ(detections, 1);
  // stop() is idempotent and a second restart still works.
  detector.stop();
  detector.start([&](NodeId, SimTime) { ++detections; });
  rig.sim.run_until(6.0);
  detector.stop();
  EXPECT_EQ(detections, 1);  // node 2 already reported, no re-report
}

TEST(Heartbeat, RepairReArmsAfterDetectedFailure) {
  // note_repair after a *reported* failure must clear the report so the
  // node's next failure is detected again (regression: a stale `reported`
  // flag silently disabled detection for revived nodes).
  Rig rig;
  HeartbeatConfig config;
  config.period = 0.1;
  config.timeout = 0.3;
  HeartbeatDetector detector(rig.sim, rig.cluster, config);
  std::vector<SimTime> detections;
  detector.start([&](NodeId, SimTime) { detections.push_back(rig.sim.now()); });
  rig.sim.at(1.0, [&] {
    rig.cluster.kill_node(1);
    detector.note_failure(1, rig.sim.now());
  });
  rig.sim.run_until(2.0);
  ASSERT_EQ(detections.size(), 1u);  // first failure detected...
  rig.cluster.revive_node(1);
  detector.note_repair(1);  // ...then repaired
  rig.sim.at(3.0, [&] {
    rig.cluster.kill_node(1);
    detector.note_failure(1, rig.sim.now());
  });
  rig.sim.run_until(5.0);
  detector.stop();
  EXPECT_EQ(detections.size(), 2u);
}

TEST(Heartbeat, NoteFailureOnSuspectedNodeDoesNotRereport) {
  // Wire mode: a partition gets node 1 suspected; when it then *really*
  // dies, note_failure must not produce a second report.
  Rig rig;
  HeartbeatConfig config;
  config.period = 0.1;
  config.timeout = 0.3;
  HeartbeatDetector detector(rig.sim, rig.cluster, config);
  detector.set_wire_mode(rig.cluster.fabric(), 0, [&](NodeId n) {
    return rig.cluster.node(n).alive();
  });
  int detections = 0;
  detector.start([&](NodeId n, SimTime) {
    EXPECT_EQ(n, 1u);
    ++detections;
  });
  rig.sim.at(1.0, [&] {
    rig.cluster.fabric().faults().set_partition_group(
        rig.cluster.node(1).host(), 1);
  });
  rig.sim.run_until(2.0);
  EXPECT_EQ(detections, 1);
  EXPECT_TRUE(detector.suspected(1));
  rig.sim.at(2.5, [&] {
    rig.cluster.kill_node(1);
    detector.note_failure(1, rig.sim.now());
  });
  rig.sim.run_until(5.0);
  detector.stop();
  EXPECT_EQ(detections, 1);         // still just the one report
  EXPECT_FALSE(detector.suspected(1));  // ...now a confirmed failure
}

TEST(Heartbeat, WireModePartitionCausesFalsePositiveAndHealExposesIt) {
  Rig rig;
  HeartbeatConfig config;
  config.period = 0.1;
  config.timeout = 0.3;
  HeartbeatDetector detector(rig.sim, rig.cluster, config);
  detector.set_wire_mode(rig.cluster.fabric(), 0, [&](NodeId n) {
    return rig.cluster.node(n).alive();
  });
  std::optional<NodeId> false_positive;
  detector.set_on_false_positive([&](NodeId n) { false_positive = n; });
  std::optional<std::pair<NodeId, SimTime>> detected;
  detector.start([&](NodeId n, SimTime latency) { detected = {n, latency}; });
  rig.sim.at(1.0, [&] {
    rig.cluster.fabric().faults().set_partition_group(
        rig.cluster.node(2).host(), 1);
  });
  rig.sim.run_until(3.0);
  // The alive-but-unreachable node was declared failed...
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(detected->first, 2u);
  EXPECT_GE(detected->second, config.timeout - 1e-9);
  EXPECT_TRUE(detector.suspected(2));
  EXPECT_TRUE(rig.cluster.node(2).alive());
  EXPECT_FALSE(false_positive.has_value());
  EXPECT_GE(rig.sim.telemetry().metrics().value("hb.suspected"), 1.0);
  // ...and healing the partition lets a beat through, exposing the
  // mistake exactly once.
  rig.sim.at(3.0, [&] {
    rig.cluster.fabric().faults().heal(rig.cluster.node(2).host());
  });
  rig.sim.run_until(5.0);
  detector.stop();
  ASSERT_TRUE(false_positive.has_value());
  EXPECT_EQ(*false_positive, 2u);
  EXPECT_DOUBLE_EQ(rig.sim.telemetry().metrics().value("hb.false_positives"),
                   1.0);
}

TEST(Heartbeat, WireModeHealthyClusterStaysQuiet) {
  Rig rig;
  HeartbeatDetector detector(rig.sim, rig.cluster);
  detector.set_wire_mode(rig.cluster.fabric(), 0, [&](NodeId n) {
    return rig.cluster.node(n).alive();
  });
  int detections = 0;
  detector.start([&](NodeId, SimTime) { ++detections; });
  rig.sim.run_until(10.0);
  detector.stop();
  EXPECT_EQ(detections, 0);
}

TEST(ClusterManager, FencingTokensRoundTrip) {
  Rig rig;
  EXPECT_FALSE(rig.cluster.is_fenced(1));
  EXPECT_EQ(rig.cluster.fence_token(1), 0u);
  rig.cluster.fence_node(1, 7);
  EXPECT_TRUE(rig.cluster.is_fenced(1));
  EXPECT_EQ(rig.cluster.fence_token(1), 7u);
  rig.cluster.fence_node(1, 9);  // re-fencing overwrites
  EXPECT_EQ(rig.cluster.fence_token(1), 9u);
  EXPECT_FALSE(rig.cluster.is_fenced(0));
  rig.cluster.lift_fence(1);
  EXPECT_FALSE(rig.cluster.is_fenced(1));
  EXPECT_EQ(rig.cluster.fence_token(1), 0u);
  EXPECT_THROW(rig.cluster.fence_node(1, 0), ConfigError);  // 0 reserved
  EXPECT_THROW(rig.cluster.fence_node(99, 1), ConfigError);
}

TEST(Heartbeat, InvalidConfigRejected) {
  Rig rig;
  HeartbeatConfig bad;
  bad.period = 1.0;
  bad.timeout = 0.5;
  EXPECT_THROW(HeartbeatDetector(rig.sim, rig.cluster, bad), ConfigError);
}

}  // namespace
}  // namespace vdc::cluster
