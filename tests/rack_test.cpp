// Tests for rack fault domains: rack-aware group planning, whole-rack
// correlated failures, and node memory-capacity enforcement.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/recovery.hpp"
#include "core/runtime.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

WorkloadFactory idle_factory() {
  return [](vm::VmId) -> std::unique_ptr<vm::Workload> {
    return std::make_unique<vm::IdleWorkload>();
  };
}

/// `racks` racks of `per_rack` nodes, `vms` guests on each node.
struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(7)};
  DvdcState state;

  Rig(std::uint32_t racks, std::uint32_t per_rack, std::uint32_t vms) {
    for (std::uint32_t r = 0; r < racks; ++r) {
      for (std::uint32_t i = 0; i < per_rack; ++i) {
        cluster::NodeSpec spec;
        spec.rack = r;
        cluster.add_node(spec);
      }
    }
    for (cluster::NodeId n = 0; n < racks * per_rack; ++n)
      for (std::uint32_t v = 0; v < vms; ++v)
        cluster.boot_vm(n, kib(1), 16, std::make_unique<vm::IdleWorkload>());
  }
};

TEST(Rack, KillRackTakesAllItsNodes) {
  Rig rig(3, 2, 1);
  EXPECT_EQ(rig.cluster.alive_racks(),
            (std::vector<cluster::RackId>{0, 1, 2}));
  const auto lost = rig.cluster.kill_rack(1);
  EXPECT_EQ(lost.size(), 2u);
  EXPECT_EQ(rig.cluster.alive_nodes().size(), 4u);
  EXPECT_EQ(rig.cluster.alive_racks(),
            (std::vector<cluster::RackId>{0, 2}));
  EXPECT_THROW(rig.cluster.kill_rack(1), ConfigError);  // already down
}

TEST(Rack, AwarePlannerSpreadsGroupsAcrossRacks) {
  Rig rig(4, 2, 2);  // 8 nodes in 4 racks
  PlannerConfig config;
  config.group_size = 3;
  config.rack_aware = true;
  GroupPlan plan = GroupPlanner(config).plan(rig.cluster);
  EXPECT_TRUE(plan.rack_aware);
  EXPECT_TRUE(GroupPlanner::validate(plan, rig.cluster));
  for (const auto& g : plan.groups) {
    std::set<cluster::RackId> racks;
    for (vm::VmId m : g.members) {
      const auto loc = *rig.cluster.locate(m);
      EXPECT_TRUE(racks.insert(rig.cluster.node(loc).rack()).second)
          << "two members of group " << g.id << " share a rack";
    }
  }
}

TEST(Rack, ObliviousPlanFailsRackAwareValidation) {
  Rig rig(2, 3, 1);  // 2 racks x 3 nodes: k=3 groups must share racks
  PlannerConfig oblivious;
  oblivious.group_size = 3;
  GroupPlan plan = GroupPlanner(oblivious).plan(rig.cluster);
  EXPECT_TRUE(GroupPlanner::validate(plan, rig.cluster));
  plan.rack_aware = true;  // reinterpret under the stricter constraint
  EXPECT_FALSE(GroupPlanner::validate(plan, rig.cluster));
}

TEST(Rack, AwareParityHoldersAvoidMemberRacks) {
  Rig rig(4, 2, 1);
  PlannerConfig config;
  config.group_size = 3;
  config.rack_aware = true;
  auto placed = PlacedPlan::make(GroupPlanner(config).plan(rig.cluster),
                                 rig.cluster, ParityScheme::Raid5);
  for (std::size_t gi = 0; gi < placed.plan.groups.size(); ++gi) {
    std::set<cluster::RackId> member_racks;
    for (vm::VmId m : placed.plan.groups[gi].members)
      member_racks.insert(
          rig.cluster.node(*rig.cluster.locate(m)).rack());
    for (cluster::NodeId holder : placed.holders[gi])
      EXPECT_FALSE(member_racks.count(rig.cluster.node(holder).rack()));
  }
}

TEST(Rack, UnsatisfiableRackConstraintThrows) {
  Rig rig(2, 4, 1);  // only 2 racks
  PlannerConfig config;
  config.group_size = 3;  // needs 3 racks for members alone
  config.rack_aware = true;
  EXPECT_THROW(GroupPlanner(config).plan(rig.cluster), ConfigError);
}

TEST(Rack, WholeRackFailureSurvivedWithRackAwarePlan) {
  // 4 racks x 2 nodes x 1 VM; rack-aware groups of 3 -> a full rack
  // failure erases at most one member per group: RAID-5 recovers all.
  Rig rig(4, 2, 1);
  PlannerConfig config;
  config.group_size = 3;
  config.rack_aware = true;
  auto placed = PlacedPlan::make(GroupPlanner(config).plan(rig.cluster),
                                 rig.cluster, ParityScheme::Raid5);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  RecoveryManager recovery(rig.sim, rig.cluster, rig.state, idle_factory());
  bool committed = false;
  coord.run_epoch(placed, 1, [&](const EpochStats&) { committed = true; });
  rig.sim.run();
  ASSERT_TRUE(committed);

  std::map<vm::VmId, std::vector<std::byte>> payloads;
  for (vm::VmId vmid : rig.cluster.all_vms())
    payloads[vmid] = rig.state
                         .node_store(*rig.cluster.locate(vmid))
                         .find(vmid, 1)
                         ->payload();

  const auto lost = rig.cluster.kill_rack(0);
  ASSERT_EQ(lost.size(), 2u);
  for (cluster::NodeId nid = 0; nid < 2; ++nid) rig.state.drop_node(nid);

  std::optional<RecoveryStats> stats;
  recovery.recover(placed, lost,
                   [&](const RecoveryStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success) << stats->reason;
  for (vm::VmId vmid : lost)
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
              payloads.at(vmid));
}

TEST(Rack, WholeRackFailureKillsRackObliviousPlan) {
  // Same cluster, rack-oblivious plan: the greedy planner happily puts
  // two members of one group into rack 0, so a rack failure is a double
  // erasure under RAID-5.
  Rig rig(2, 3, 1);  // 2 racks x 3 nodes
  PlannerConfig config;
  config.group_size = 3;  // members span both racks by pigeonhole
  auto placed = PlacedPlan::make(GroupPlanner(config).plan(rig.cluster),
                                 rig.cluster, ParityScheme::Raid5);
  DvdcCoordinator coord(rig.sim, rig.cluster, rig.state);
  RecoveryManager recovery(rig.sim, rig.cluster, rig.state, idle_factory());
  coord.run_epoch(placed, 1, [](const EpochStats&) {});
  rig.sim.run();

  // Find a rack hosting >= 2 members of group 0 (pigeonhole guarantees
  // one exists with 3 members over 2 racks).
  std::map<cluster::RackId, int> members_per_rack;
  for (vm::VmId m : placed.plan.groups[0].members)
    ++members_per_rack[rig.cluster.node(*rig.cluster.locate(m)).rack()];
  cluster::RackId doomed = 0;
  for (const auto& [rack, count] : members_per_rack)
    if (count >= 2) doomed = rack;

  const auto lost = rig.cluster.kill_rack(doomed);
  for (cluster::NodeId nid = 0; nid < 6; ++nid)
    if (!rig.cluster.node(nid).alive()) rig.state.drop_node(nid);

  std::optional<RecoveryStats> stats;
  recovery.recover(placed, lost,
                   [&](const RecoveryStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->success);
}

TEST(Capacity, EnforcedBootRejectsOverflow) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(9));
  cluster::NodeSpec spec;
  spec.memory = kib(64);  // room for exactly 2 x 32 KiB guests
  cluster.add_node(spec);
  cluster.set_enforce_capacity(true);
  cluster.boot_vm(0, kib(1), 32, std::make_unique<vm::IdleWorkload>());
  cluster.boot_vm(0, kib(1), 32, std::make_unique<vm::IdleWorkload>());
  EXPECT_THROW(
      cluster.boot_vm(0, kib(1), 32, std::make_unique<vm::IdleWorkload>()),
      ConfigError);
  EXPECT_FALSE(cluster.fits(0, 1));
}

TEST(Capacity, EnforcedPlaceRejectsOverflow) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(10));
  cluster::NodeSpec roomy;
  cluster::NodeSpec tight;
  tight.memory = kib(16);
  cluster.add_node(roomy);
  cluster.add_node(tight);
  cluster.set_enforce_capacity(true);
  const auto vm = cluster.boot_vm(0, kib(1), 32,
                                  std::make_unique<vm::IdleWorkload>());
  auto machine = cluster.node(0).hypervisor().evict(vm);
  EXPECT_THROW(cluster.place(std::move(machine), 1), ConfigError);
}

TEST(Capacity, DisabledByDefault) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(11));
  cluster::NodeSpec spec;
  spec.memory = 1;  // absurdly small, but enforcement is off
  cluster.add_node(spec);
  EXPECT_NO_THROW(
      cluster.boot_vm(0, kib(4), 64, std::make_unique<vm::IdleWorkload>()));
}

}  // namespace
}  // namespace vdc::core
