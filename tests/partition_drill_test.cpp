// Partition drill: wire-true failure detection end to end.
//
// A partitioned-but-alive node must be (wrongly) declared dead after the
// heartbeat timeout, its VMs recovered elsewhere, its stale writes fenced
// off; when the partition heals, the first beat that gets through exposes
// the false positive and the zombie is reconciled back into the cluster —
// and the job still finishes with a monotone committed-work watermark.

#include <gtest/gtest.h>

#include <vector>

#include "core/runtime.hpp"
#include "failure/injector.hpp"

namespace vdc::core {
namespace {

JobRunner::BackendFactory dvdc_factory(ProtocolConfig protocol = {},
                                       RecoveryConfig recovery = {},
                                       ClusterConfig cc = {}) {
  return [protocol, recovery, cc](simkit::Simulator& sim,
                                  cluster::ClusterManager& cluster,
                                  Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, protocol, recovery,
                                         make_workload_factory(cc));
  };
}

ClusterConfig drill_cluster() {
  ClusterConfig cc;
  cc.nodes = 6;  // recovery must stay satisfiable with a node fenced out
  cc.vms_per_node = 2;
  cc.pages_per_vm = 32;
  cc.page_size = kib(1);
  cc.write_rate = 100.0;
  return cc;
}

/// Observer that asserts the committed-work watermark never silently
/// regresses (Rollback/Restart are the two sanctioned cuts).
struct WatermarkAudit {
  std::vector<JobEvent> events;
  double watermark = 0.0;
  void operator()(const JobEvent& ev) {
    if (ev.kind == JobEvent::Kind::Rollback ||
        ev.kind == JobEvent::Kind::Restart) {
      watermark = ev.committed_work;
    } else {
      EXPECT_GE(ev.committed_work, watermark - 1e-9);
      watermark = std::max(watermark, ev.committed_work);
    }
    events.push_back(ev);
  }
  std::size_t count(JobEvent::Kind kind) const {
    std::size_t n = 0;
    for (const auto& ev : events) n += ev.kind == kind;
    return n;
  }
};

TEST(PartitionDrill, FalsePositiveFencingAndRejoin) {
  JobConfig job;
  job.total_work = minutes(5);
  job.interval = minutes(1);
  job.heartbeat = cluster::HeartbeatConfig{};
  job.failure_schedule = failure::ScheduledFailureInjector::parse(
      "partition 70 3 1\n"
      "heal 80 3\n");
  WatermarkAudit audit;
  job.observer = [&audit](const JobEvent& ev) { audit(ev); };

  JobRunner runner(job, drill_cluster(), dvdc_factory());
  const RunResult result = runner.run();
  const auto& metrics = runner.sim().telemetry().metrics();

  ASSERT_TRUE(result.finished);
  // The detector suspected the partitioned node (a false positive on the
  // wire), its beats were really dropped by the fault plane...
  EXPECT_GE(metrics.value("hb.suspected"), 1.0);
  EXPECT_GE(metrics.value("job.suspected_failures"), 1.0);
  EXPECT_GT(metrics.value("net.drops"), 0.0);
  // ...the cluster treated it as a failure episode and recovered...
  EXPECT_GE(audit.count(JobEvent::Kind::Failure), 1u);
  EXPECT_GE(audit.count(JobEvent::Kind::RecoverySettled), 1u);
  // ...and after the heal, a beat got through, the zombie's stale write
  // was fenced off, and it rejoined.
  EXPECT_DOUBLE_EQ(metrics.value("hb.false_positives"), 1.0);
  EXPECT_GE(metrics.value("recovery.fenced"), 1.0);
  // A suspected failure is not a *real* injected failure.
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.job_restarts, 0u);
  EXPECT_EQ(audit.count(JobEvent::Kind::Restart), 0u);
}

TEST(PartitionDrill, WireDetectionMeasuresRealFailureLatency) {
  JobConfig job;
  job.total_work = minutes(4);
  job.interval = minutes(1);
  job.heartbeat = cluster::HeartbeatConfig{};
  job.failure_schedule = failure::ScheduledFailureInjector::parse(
      "fail 70 3\n"
      "repair 200 3\n");
  WatermarkAudit audit;
  job.observer = [&audit](const JobEvent& ev) { audit(ev); };

  JobRunner runner(job, drill_cluster(), dvdc_factory());
  const RunResult result = runner.run();
  const auto& metrics = runner.sim().telemetry().metrics();

  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.failures, 1u);
  // Detection went over the wire: the dead node's beats simply stopped
  // and the timeout fired — no suspicion, no false positive.
  EXPECT_GE(metrics.value("hb.suspected"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.value("hb.false_positives"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.value("job.suspected_failures"), 0.0);
  EXPECT_GE(audit.count(JobEvent::Kind::RecoverySettled), 1u);
  EXPECT_EQ(audit.count(JobEvent::Kind::Restart), 0u);
}

TEST(PartitionDrill, WireModeFaultFreeMatchesOracleCompletion) {
  // With no faults at all, wire-true detection must not perturb the job:
  // beats ride the fabric but never contend with checkpoint traffic in a
  // way that changes the outcome.
  JobConfig oracle;
  oracle.total_work = minutes(3);
  oracle.interval = minutes(1);
  JobConfig wire = oracle;
  wire.heartbeat = cluster::HeartbeatConfig{};

  JobRunner a(oracle, drill_cluster(), dvdc_factory());
  const RunResult ra = a.run();
  JobRunner b(wire, drill_cluster(), dvdc_factory());
  const RunResult rb = b.run();

  ASSERT_TRUE(ra.finished && rb.finished);
  EXPECT_DOUBLE_EQ(ra.completion, rb.completion);
  EXPECT_EQ(ra.epochs, rb.epochs);
  EXPECT_EQ(rb.failures, 0u);
  EXPECT_DOUBLE_EQ(b.sim().telemetry().metrics().value("hb.suspected"), 0.0);
}

TEST(PartitionDrill, LeaderKillMidEpochMatchesUndisturbedWork) {
  // A scheduled coordinator kill between two commits: the control-plane
  // leader dies with epoch work uncommitted, a successor is elected, the
  // interrupted epoch is re-cut, and the job ends having committed
  // exactly as much work as a run nobody disturbed.
  JobConfig quiet;
  quiet.total_work = minutes(5);
  quiet.interval = minutes(1);
  quiet.control = controlplane::ControlPlaneConfig{};
  JobConfig drill = quiet;
  drill.failure_schedule =
      failure::ScheduledFailureInjector::parse("kill-leader at 90\n");
  WatermarkAudit quiet_audit, audit;
  quiet.observer = [&quiet_audit](const JobEvent& ev) { quiet_audit(ev); };
  drill.observer = [&audit](const JobEvent& ev) { audit(ev); };

  JobRunner a(quiet, drill_cluster(), dvdc_factory());
  const RunResult ra = a.run();
  JobRunner b(drill, drill_cluster(), dvdc_factory());
  const RunResult rb = b.run();

  ASSERT_TRUE(ra.finished);
  ASSERT_TRUE(rb.finished);
  EXPECT_EQ(rb.failures, 1u);
  EXPECT_EQ(rb.job_restarts, 0u);
  // Same total committed work as the undisturbed run (the final stretch
  // past the last commit runs uncheckpointed in both).
  EXPECT_DOUBLE_EQ(audit.watermark, quiet_audit.watermark);
  EXPECT_DOUBLE_EQ(rb.total_work, ra.total_work);
  EXPECT_GE(audit.count(JobEvent::Kind::Failure), 1u);
  auto* cp = b.control();
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->elections(), 1u);
  EXPECT_TRUE(cp->election_safety_ok());
  EXPECT_TRUE(cp->epoch_sequence_ok());
  EXPECT_TRUE(cp->logs_consistent());
  EXPECT_EQ(cp->leader_view()->committed_epoch,
            b.backend()->committed_epoch());
}

TEST(PartitionDrill, LeaderPartitionedThenHealsMatchesUndisturbedWork) {
  // Wire mode with the control plane on: isolating the leader (who is
  // also the heartbeat observer) triggers cluster-wide false positives
  // and possibly a restart — the drill must still commit every unit of
  // work the undisturbed run does, with a monotone watermark throughout.
  JobConfig quiet;
  quiet.total_work = minutes(5);
  quiet.interval = minutes(1);
  quiet.heartbeat = cluster::HeartbeatConfig{};
  quiet.control = controlplane::ControlPlaneConfig{};
  JobConfig drill = quiet;
  drill.failure_schedule = failure::ScheduledFailureInjector::parse(
      "partition-leader at 70 1\n"
      "heal 85 all\n");
  WatermarkAudit quiet_audit, audit;
  quiet.observer = [&quiet_audit](const JobEvent& ev) { quiet_audit(ev); };
  drill.observer = [&audit](const JobEvent& ev) { audit(ev); };

  JobRunner a(quiet, drill_cluster(), dvdc_factory());
  const RunResult ra = a.run();
  JobRunner b(drill, drill_cluster(), dvdc_factory());
  const RunResult rb = b.run();

  ASSERT_TRUE(ra.finished);
  ASSERT_TRUE(rb.finished);
  EXPECT_DOUBLE_EQ(audit.watermark, quiet_audit.watermark);
  EXPECT_DOUBLE_EQ(rb.total_work, ra.total_work);
  auto* cp = b.control();
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->elections(), 1u);
  EXPECT_TRUE(cp->election_safety_ok());
  EXPECT_TRUE(cp->epoch_sequence_ok());
  EXPECT_TRUE(cp->logs_consistent());
  EXPECT_GE(b.sim().telemetry().metrics().value("job.suspected_failures"),
            1.0);
}

}  // namespace
}  // namespace vdc::core
