// Tests for failure distributions and injectors.

#include <gtest/gtest.h>

#include <memory>

#include "common/stats.hpp"
#include "failure/distributions.hpp"
#include "failure/injector.hpp"

namespace vdc::failure {
namespace {

TEST(Distributions, ExponentialMeanIsMtbf) {
  Rng rng(1);
  ExponentialTtf ttf(1.0 / 100.0);
  EXPECT_DOUBLE_EQ(ttf.mtbf(), 100.0);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(ttf.sample(rng));
  EXPECT_NEAR(stats.mean(), 100.0, 2.0);
}

TEST(Distributions, FromMtbf) {
  auto ttf = ExponentialTtf::from_mtbf(hours(3));
  EXPECT_NEAR(ttf.rate(), 9.26e-5, 1e-7);
}

TEST(Distributions, WeibullMtbfMatchesGamma) {
  Rng rng(2);
  WeibullTtf ttf(2.0, 100.0);  // mean = 100 * Gamma(1.5) ~= 88.62
  EXPECT_NEAR(ttf.mtbf(), 88.62, 0.01);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(ttf.sample(rng));
  EXPECT_NEAR(stats.mean(), ttf.mtbf(), 2.0);
}

TEST(Distributions, WeibullShapeBelowOneHasHeavyTail) {
  Rng rng(3);
  WeibullTtf infant(0.5, 100.0);
  // shape 0.5: mean = 100 * Gamma(3) = 200.
  EXPECT_NEAR(infant.mtbf(), 200.0, 0.01);
}

TEST(Distributions, TraceReplaysAndCycles) {
  Rng rng(4);
  TraceTtf trace({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.sample(rng), 1.0);
  EXPECT_DOUBLE_EQ(trace.sample(rng), 2.0);
  EXPECT_DOUBLE_EQ(trace.sample(rng), 3.0);
  EXPECT_DOUBLE_EQ(trace.sample(rng), 1.0);  // cycles
  EXPECT_DOUBLE_EQ(trace.mtbf(), 2.0);
}

TEST(Distributions, InvalidParamsRejected) {
  EXPECT_THROW(ExponentialTtf(0.0), ConfigError);
  EXPECT_THROW(WeibullTtf(0.0, 1.0), ConfigError);
  EXPECT_THROW(TraceTtf({}), ConfigError);
  EXPECT_THROW(TraceTtf({1.0, 0.0}), ConfigError);
}

TEST(Distributions, EstimateMtbf) {
  EXPECT_DOUBLE_EQ(estimate_mtbf({2.0, 4.0, 6.0}), 4.0);
  EXPECT_THROW(estimate_mtbf({}), ConfigError);
}

TEST(NodeInjector, FiresAtSampledTimes) {
  simkit::Simulator sim;
  NodeFailureInjector injector(sim, Rng(5));
  std::vector<std::pair<NodeId, double>> fired;
  injector.set_on_failure([&](NodeId n) { fired.emplace_back(n, sim.now()); });
  injector.arm(0, std::make_shared<TraceTtf>(std::vector<SimTime>{5.0}));
  sim.run_until(12.0);
  // Trace gap 5.0, immediate re-arm: failures at 5 and 10.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0].second, 5.0);
  EXPECT_DOUBLE_EQ(fired[1].second, 10.0);
  EXPECT_EQ(injector.failures_injected(), 2u);
}

TEST(NodeInjector, RepairDelaysReArm) {
  simkit::Simulator sim;
  NodeFailureInjector injector(sim, Rng(6));
  injector.set_repair_time(3.0);
  std::vector<double> failures, repairs;
  injector.set_on_failure([&](NodeId) { failures.push_back(sim.now()); });
  injector.set_on_repair([&](NodeId) { repairs.push_back(sim.now()); });
  injector.arm(0, std::make_shared<TraceTtf>(std::vector<SimTime>{5.0}));
  sim.run_until(20.0);
  // fail@5, repair@8, fail@13, repair@16.
  ASSERT_GE(failures.size(), 2u);
  EXPECT_DOUBLE_EQ(failures[0], 5.0);
  EXPECT_DOUBLE_EQ(repairs[0], 8.0);
  EXPECT_DOUBLE_EQ(failures[1], 13.0);
}

TEST(NodeInjector, DisarmStopsInjection) {
  simkit::Simulator sim;
  NodeFailureInjector injector(sim, Rng(7));
  int count = 0;
  injector.set_on_failure([&](NodeId) {
    if (++count == 2) injector.disarm(0);
  });
  injector.arm(0, std::make_shared<TraceTtf>(std::vector<SimTime>{1.0}));
  sim.run_until(100.0);
  EXPECT_EQ(count, 2);
}

TEST(NodeInjector, IndependentNodes) {
  simkit::Simulator sim;
  NodeFailureInjector injector(sim, Rng(8));
  std::vector<NodeId> victims;
  injector.set_on_failure([&](NodeId n) { victims.push_back(n); });
  injector.arm(0, std::make_shared<TraceTtf>(std::vector<SimTime>{2.0}));
  injector.arm(1, std::make_shared<TraceTtf>(std::vector<SimTime>{3.0}));
  sim.run_until(6.5);
  // Node 0 at 2,4,6; node 1 at 3,6.
  EXPECT_EQ(victims.size(), 5u);
}

TEST(ClusterInjector, AggregateRateAndUniformVictims) {
  simkit::Simulator sim;
  ClusterFailureInjector injector(
      sim, Rng(9), std::make_shared<ExponentialTtf>(1.0 / 10.0), 4);
  std::vector<NodeId> victims;
  injector.start([&](NodeId n) { victims.push_back(n); });
  sim.run_until(10000.0);
  injector.stop();
  // ~1000 failures expected.
  EXPECT_NEAR(static_cast<double>(victims.size()), 1000.0, 120.0);
  // Every node gets hit a fair share.
  std::array<int, 4> counts{};
  for (NodeId v : victims) ++counts.at(v);
  for (int c : counts) EXPECT_GT(c, 150);
}

TEST(ScheduledInjector, FiresExactNodesAtAbsoluteTimes) {
  simkit::Simulator sim;
  ScheduledFailureInjector injector(
      sim, {{5.0, 2}, {5.0, 3}, {12.5, 0}});
  std::vector<std::pair<NodeId, double>> fired;
  injector.start([&](NodeId n) { fired.emplace_back(n, sim.now()); });
  EXPECT_EQ(injector.remaining(), 3u);
  sim.run();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair<NodeId, double>{2, 5.0}));
  EXPECT_EQ(fired[1], (std::pair<NodeId, double>{3, 5.0}));
  EXPECT_EQ(fired[2], (std::pair<NodeId, double>{0, 12.5}));
  EXPECT_EQ(injector.failures_injected(), 3u);
  EXPECT_EQ(injector.remaining(), 0u);
  EXPECT_TRUE(injector.exact_targets());
}

TEST(ScheduledInjector, StopCancelsTheRest) {
  simkit::Simulator sim;
  ScheduledFailureInjector injector(sim, {{1.0, 0}, {2.0, 1}, {3.0, 2}});
  int count = 0;
  injector.start([&](NodeId) {
    if (++count == 2) injector.stop();
  });
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(injector.remaining(), 1u);
}

TEST(ScheduledInjector, ReplaysBitIdentically) {
  std::vector<std::vector<std::pair<NodeId, double>>> runs;
  for (int i = 0; i < 2; ++i) {
    simkit::Simulator sim;
    ScheduledFailureInjector injector(sim, {{4.0, 1}, {9.0, 2}});
    auto& fired = runs.emplace_back();
    injector.start([&](NodeId n) { fired.emplace_back(n, sim.now()); });
    sim.run();
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(ScheduledInjector, ParsesScheduleText) {
  const auto schedule = ScheduledFailureInjector::parse(
      "# drill: double failure, then a late straggler\n"
      "360 2\n"
      "362.5 5\n"
      "\n"
      "900 2  # node 2 again\n");
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_DOUBLE_EQ(schedule[0].at, 360.0);
  EXPECT_EQ(schedule[0].node, 2u);
  EXPECT_DOUBLE_EQ(schedule[1].at, 362.5);
  EXPECT_EQ(schedule[1].node, 5u);
  EXPECT_DOUBLE_EQ(schedule[2].at, 900.0);
  EXPECT_EQ(schedule[2].node, 2u);
}

TEST(ScheduledInjector, ParseRejectsMalformedInput) {
  EXPECT_THROW(ScheduledFailureInjector::parse("360\n"), InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("abc 1\n"), InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("-5 1\n"), InvariantError);
  // Out-of-order times are a schedule bug, not a sorting request.
  EXPECT_THROW(ScheduledFailureInjector::parse("10 1\n5 2\n"),
               InvariantError);
}

TEST(ScheduledInjector, ParsesLinkFaultEvents) {
  const auto schedule = ScheduledFailureInjector::parse(
      "# gray link, then a NIC-wide brownout\n"
      "link 10 2 3 drop=0.25 corrupt=0.01 latency=0.002 jitter=0.0005\n"
      "link 20 4 - drop=0.5 rate=0.25\n");
  ASSERT_EQ(schedule.size(), 2u);
  using Kind = ScheduledFailure::Kind;
  EXPECT_EQ(schedule[0].kind, Kind::kLink);
  EXPECT_DOUBLE_EQ(schedule[0].at, 10.0);
  EXPECT_EQ(schedule[0].node, 2u);
  EXPECT_EQ(schedule[0].peer, 3u);
  EXPECT_DOUBLE_EQ(schedule[0].drop, 0.25);
  EXPECT_DOUBLE_EQ(schedule[0].corrupt, 0.01);
  EXPECT_DOUBLE_EQ(schedule[0].latency, 0.002);
  EXPECT_DOUBLE_EQ(schedule[0].jitter, 0.0005);
  EXPECT_DOUBLE_EQ(schedule[0].rate, 1.0);
  // "-" peer = the whole NIC, every direction.
  EXPECT_EQ(schedule[1].peer, ScheduledFailure::kAllNodes);
  EXPECT_DOUBLE_EQ(schedule[1].drop, 0.5);
  EXPECT_DOUBLE_EQ(schedule[1].rate, 0.25);
}

TEST(ScheduledInjector, ParsesPartitionHealRepairAndMixedKinds) {
  const auto schedule = ScheduledFailureInjector::parse(
      "fail 5 1\n"
      "partition 10 3 1\n"
      "heal 20 3\n"
      "repair 25 1\n"
      "heal 30 all\n"
      "40 2\n");  // legacy bare form still means fail
  ASSERT_EQ(schedule.size(), 6u);
  using Kind = ScheduledFailure::Kind;
  EXPECT_EQ(schedule[0].kind, Kind::kFail);
  EXPECT_EQ(schedule[0].node, 1u);
  EXPECT_EQ(schedule[1].kind, Kind::kPartition);
  EXPECT_EQ(schedule[1].node, 3u);
  EXPECT_EQ(schedule[1].group, 1u);
  EXPECT_EQ(schedule[2].kind, Kind::kHeal);
  EXPECT_EQ(schedule[2].node, 3u);
  EXPECT_EQ(schedule[3].kind, Kind::kRepair);
  EXPECT_EQ(schedule[3].node, 1u);
  EXPECT_EQ(schedule[4].kind, Kind::kHeal);
  EXPECT_EQ(schedule[4].node, ScheduledFailure::kAllNodes);
  EXPECT_EQ(schedule[5].kind, Kind::kFail);
  EXPECT_EQ(schedule[5].node, 2u);
}

TEST(ScheduledInjector, ParseRejectsMalformedEvents) {
  // Unknown keyword / key, bad probabilities, missing fields.
  EXPECT_THROW(ScheduledFailureInjector::parse("jiggle 5 1\n"),
               InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("link 5 1 2 wobble=1\n"),
               InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("link 5 1 2 drop=1.5\n"),
               InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("link 5 1 2 rate=0\n"),
               InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("partition 5 1\n"),
               InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("repair 5\n"), InvariantError);
  // Out-of-order times are rejected across kinds, too.
  EXPECT_THROW(
      ScheduledFailureInjector::parse("partition 10 1 1\nfail 5 2\n"),
      InvariantError);
}

TEST(ScheduledInjector, ParsesLeaderTargetedEvents) {
  // Leader-targeted events name no node: the victim is whoever holds the
  // control-plane lease when the event fires, so `node` parses to the
  // kAllNodes sentinel and resolution happens at fire time.
  const auto schedule = ScheduledFailureInjector::parse(
      "kill-leader at 10\n"
      "kill-leader 20\n"  // the "at" is optional, as with other kinds
      "partition-leader at 30 2\n"
      "partition-leader 40 1\n"
      "heal 50 all\n");
  ASSERT_EQ(schedule.size(), 5u);
  using Kind = ScheduledFailure::Kind;
  EXPECT_EQ(schedule[0].kind, Kind::kKillLeader);
  EXPECT_DOUBLE_EQ(schedule[0].at, 10.0);
  EXPECT_EQ(schedule[0].node, ScheduledFailure::kAllNodes);
  EXPECT_EQ(schedule[1].kind, Kind::kKillLeader);
  EXPECT_DOUBLE_EQ(schedule[1].at, 20.0);
  EXPECT_EQ(schedule[1].node, ScheduledFailure::kAllNodes);
  EXPECT_EQ(schedule[2].kind, Kind::kPartitionLeader);
  EXPECT_DOUBLE_EQ(schedule[2].at, 30.0);
  EXPECT_EQ(schedule[2].node, ScheduledFailure::kAllNodes);
  EXPECT_EQ(schedule[2].group, 2u);
  EXPECT_EQ(schedule[3].kind, Kind::kPartitionLeader);
  EXPECT_EQ(schedule[3].group, 1u);
}

TEST(ScheduledInjector, ParseRejectsMalformedLeaderTargets) {
  // A leader event naming an explicit victim is a contradiction — clear
  // error, not a silent ignore.
  EXPECT_THROW(ScheduledFailureInjector::parse("kill-leader at 10 3\n"),
               InvariantError);
  EXPECT_THROW(
      ScheduledFailureInjector::parse("partition-leader at 10 1 3\n"),
      InvariantError);
  // Missing fields.
  EXPECT_THROW(ScheduledFailureInjector::parse("kill-leader\n"),
               InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("kill-leader at\n"),
               InvariantError);
  EXPECT_THROW(ScheduledFailureInjector::parse("partition-leader at 10\n"),
               InvariantError);
  // Group 0 means "connected" — partitioning into it is a no-op typo.
  EXPECT_THROW(ScheduledFailureInjector::parse("partition-leader at 10 0\n"),
               InvariantError);
  // Times must still be non-decreasing across leader events.
  EXPECT_THROW(
      ScheduledFailureInjector::parse("kill-leader at 10\nfail 5 2\n"),
      InvariantError);
}

TEST(ScheduledInjector, DispatchesNonFailureEventsToEventCallback) {
  simkit::Simulator sim;
  ScheduledFailureInjector injector(
      sim, ScheduledFailureInjector::parse("fail 1 0\n"
                                           "partition 2 1 1\n"
                                           "heal 3 1\n"
                                           "repair 4 0\n"));
  std::vector<NodeId> failures;
  std::vector<std::pair<ScheduledFailure::Kind, double>> events;
  injector.set_on_event([&](const ScheduledFailure& ev) {
    events.emplace_back(ev.kind, sim.now());
  });
  injector.start([&](NodeId n) { failures.push_back(n); });
  sim.run();
  // Only real failures reach the failure callback (and count as such).
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0], 0u);
  EXPECT_EQ(injector.failures_injected(), 1u);
  using Kind = ScheduledFailure::Kind;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (std::pair<Kind, double>{Kind::kPartition, 2.0}));
  EXPECT_EQ(events[1], (std::pair<Kind, double>{Kind::kHeal, 3.0}));
  EXPECT_EQ(events[2], (std::pair<Kind, double>{Kind::kRepair, 4.0}));
}

TEST(ClusterInjector, StopFromCallback) {
  simkit::Simulator sim;
  ClusterFailureInjector injector(
      sim, Rng(10), std::make_shared<TraceTtf>(std::vector<SimTime>{1.0}),
      2);
  int count = 0;
  injector.start([&](NodeId) {
    if (++count == 3) injector.stop();
  });
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace vdc::failure
