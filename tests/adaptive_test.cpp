// Tests for adaptive checkpoint-interval policies and the bursty/skewed
// workload models they respond to.

#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive.hpp"
#include "core/baseline.hpp"
#include "core/runtime.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

EpochStats stats_with(SimTime overhead, SimTime latency) {
  EpochStats s;
  s.overhead = overhead;
  s.latency = latency;
  return s;
}

TEST(FixedPolicy, AlwaysSameInterval) {
  FixedIntervalPolicy policy(minutes(5));
  EXPECT_DOUBLE_EQ(policy.initial_interval(), minutes(5));
  EXPECT_DOUBLE_EQ(policy.next_interval(stats_with(1.0, 2.0)), minutes(5));
  EXPECT_THROW(FixedIntervalPolicy(0.0), ConfigError);
}

TEST(AdaptivePolicy, ConvergesToYoungForConstantCost) {
  AdaptiveConfig config;
  config.lambda = 1e-4;
  config.alpha = 0.5;
  AdaptiveIntervalPolicy policy(config);
  SimTime interval = policy.initial_interval();
  for (int i = 0; i < 20; ++i)
    interval = policy.next_interval(stats_with(10.0, 10.0));
  EXPECT_NEAR(interval, std::sqrt(2.0 * 10.0 / 1e-4), 1.0);
}

TEST(AdaptivePolicy, CheapEpochsShrinkTheInterval) {
  AdaptiveConfig config;
  config.lambda = 1e-4;
  AdaptiveIntervalPolicy policy(config);
  SimTime expensive = 0, cheap = 0;
  for (int i = 0; i < 10; ++i)
    expensive = policy.next_interval(stats_with(60.0, 60.0));
  for (int i = 0; i < 10; ++i)
    cheap = policy.next_interval(stats_with(0.04, 0.04));
  EXPECT_LT(cheap, expensive / 5.0);
}

TEST(AdaptivePolicy, TracksACostStep) {
  AdaptiveConfig config;
  config.lambda = 1e-4;
  config.alpha = 0.5;
  AdaptiveIntervalPolicy policy(config);
  for (int i = 0; i < 10; ++i) policy.next_interval(stats_with(1.0, 1.0));
  const SimTime before = policy.cost_estimate();
  for (int i = 0; i < 10; ++i) policy.next_interval(stats_with(20.0, 20.0));
  EXPECT_GT(policy.cost_estimate(), before * 10.0);
}

TEST(AdaptivePolicy, LatencySignalSelectable) {
  AdaptiveConfig ov;
  ov.use_latency = false;
  AdaptiveConfig lat = ov;
  lat.use_latency = true;
  AdaptiveIntervalPolicy a(ov), b(lat);
  a.next_interval(stats_with(1.0, 100.0));
  b.next_interval(stats_with(1.0, 100.0));
  EXPECT_NEAR(a.cost_estimate(), 1.0, 1e-9);
  EXPECT_NEAR(b.cost_estimate(), 100.0, 1e-9);
}

TEST(AdaptivePolicy, RespectsClamps) {
  AdaptiveConfig config;
  config.lambda = 1e-4;
  config.min_interval = 30.0;
  config.max_interval = 60.0;
  AdaptiveIntervalPolicy policy(config);
  EXPECT_DOUBLE_EQ(policy.next_interval(stats_with(1e-9, 1e-9)), 30.0);
  AdaptiveIntervalPolicy policy2(config);
  EXPECT_DOUBLE_EQ(policy2.next_interval(stats_with(1e6, 1e6)), 60.0);
}

TEST(AdaptivePolicy, HeldBytesBackPressureShortensInterval) {
  AdaptiveConfig config;
  config.lambda = 1e-4;
  config.alpha = 1.0;  // estimate = last observation, no smoothing
  config.held_highwater = mib(1);
  AdaptiveIntervalPolicy policy(config);

  EpochStats calm = stats_with(10.0, 10.0);
  calm.held_egress_peak = kib(256);  // under the mark: pure Young
  const SimTime base = policy.next_interval(calm);
  EXPECT_NEAR(base, std::sqrt(2.0 * 10.0 / 1e-4), 1.0);

  // 4x overshoot -> the interval that caused it shrinks by 4x.
  EpochStats hot = calm;
  hot.held_egress_peak = mib(4);
  const SimTime capped = policy.next_interval(hot);
  EXPECT_NEAR(capped, base / 4.0, 1.0);

  // Extreme overshoot still respects the floor.
  EpochStats blown = calm;
  blown.held_egress_peak = gib(4);
  EXPECT_DOUBLE_EQ(policy.next_interval(blown), config.min_interval);

  // Calm epochs recover the cap by doubling — NOT an instant jump back
  // to Young (which would oscillate between a calm short epoch and a
  // buffer-blowing long one).
  EXPECT_DOUBLE_EQ(policy.next_interval(calm), 2.0 * config.min_interval);
  EXPECT_DOUBLE_EQ(policy.next_interval(calm), 4.0 * config.min_interval);

  // highwater = 0 disables the term entirely.
  AdaptiveConfig off = config;
  off.held_highwater = 0;
  AdaptiveIntervalPolicy relaxed(off);
  EXPECT_NEAR(relaxed.next_interval(blown), base, 1.0);
}

TEST(AdaptivePolicy, InvalidConfigRejected) {
  AdaptiveConfig bad;
  bad.lambda = 0.0;
  EXPECT_THROW(AdaptiveIntervalPolicy{bad}, ConfigError);
  bad = AdaptiveConfig{};
  bad.alpha = 1.5;
  EXPECT_THROW(AdaptiveIntervalPolicy{bad}, ConfigError);
  bad = AdaptiveConfig{};
  bad.max_interval = bad.min_interval;
  EXPECT_THROW(AdaptiveIntervalPolicy{bad}, ConfigError);
}

TEST(JobRunner, PolicyDrivesIntervals) {
  // With an adaptive policy and cheap COW epochs, the runner should take
  // many more checkpoints than the (huge) fixed default would.
  ClusterConfig cc;
  cc.nodes = 3;
  cc.vms_per_node = 1;
  cc.page_size = kib(1);
  cc.pages_per_vm = 16;
  cc.write_rate = 10.0;

  JobConfig job;
  job.total_work = minutes(30);
  job.interval = hours(10);  // would mean zero checkpoints...
  AdaptiveConfig ac;
  ac.lambda = 1.0 / minutes(10);
  ac.initial = minutes(2);
  ac.min_interval = seconds(30);
  job.interval_policy = std::make_shared<AdaptiveIntervalPolicy>(ac);
  job.lambda = 0.0;

  auto factory = [cc](simkit::Simulator& sim,
                      cluster::ClusterManager& cluster,
                      Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, ProtocolConfig{},
                                         RecoveryConfig{},
                                         make_workload_factory(cc));
  };
  JobRunner runner(job, cc, factory);
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  // Young for 40 ms overhead at MTBF 10 min is ~7 s -> clamped to 30 s;
  // a 30-minute job then takes dozens of checkpoints.
  EXPECT_GT(result.epochs, 20u);
}

TEST(Workload, ZipfSkewsTowardLowPages) {
  vm::MemoryImage img(64, 1000);
  Rng rng(7);
  vm::ZipfWorkload w(1.0, 1.2);
  // Draw many writes and compare head vs. tail hit mass.
  w.advance(img, 5000.0, rng);
  std::size_t head = 0, tail = 0;
  for (vm::PageIndex p = 0; p < 1000; ++p) {
    if (!img.is_dirty(p)) continue;
    (p < 100 ? head : tail) += 1;
  }
  EXPECT_EQ(head, 100u);       // the head saturates
  EXPECT_LT(tail, 700u);       // the tail stays sparse
  EXPECT_GT(tail, 10u);        // but is not empty (heavy tail)
}

TEST(Workload, ZipfInvalidExponent) {
  EXPECT_THROW(vm::ZipfWorkload(1.0, 0.0), ConfigError);
}

TEST(Workload, PhasedAlternatesRates) {
  vm::MemoryImage img(64, 4096);
  Rng rng(8);
  vm::PhasedWorkload w(1000.0, 0.0, /*phase_length=*/10.0);
  EXPECT_DOUBLE_EQ(w.write_rate(), 500.0);

  // Phase A: writes happen.
  w.advance(img, 10.0, rng);
  const std::size_t after_a = img.dirty_count();
  EXPECT_GT(after_a, 500u);
  // Phase B: silence.
  w.advance(img, 10.0, rng);
  EXPECT_EQ(img.dirty_count(), after_a);
  // Phase A again.
  w.advance(img, 10.0, rng);
  EXPECT_GT(img.dirty_count(), after_a);
}

TEST(Workload, PhasedHandlesPartialSteps) {
  vm::MemoryImage img(64, 4096);
  Rng rng(9);
  vm::PhasedWorkload w(100.0, 0.0, 1.0);
  // 0.4s steps straddle phase boundaries; total active time = 5 of 10 s.
  for (int i = 0; i < 25; ++i) w.advance(img, 0.4, rng);
  // ~500 writes expected (100/s for 5 s).
  EXPECT_GT(img.dirty_count(), 300u);
  EXPECT_LT(img.dirty_count(), 600u);
}

TEST(Workload, PhasedCurrentRateReports) {
  vm::PhasedWorkload w(10.0, 20.0, 5.0);
  EXPECT_DOUBLE_EQ(w.current_rate(), 10.0);
  vm::MemoryImage img(64, 16);
  Rng rng(10);
  w.advance(img, 5.0, rng);
  EXPECT_DOUBLE_EQ(w.current_rate(), 20.0);
}

}  // namespace
}  // namespace vdc::core
