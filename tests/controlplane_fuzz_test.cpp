// Seed-sweep fuzz of the replicated control plane under coordinator
// faults: random leader kills, leader partitions (with later heals) and
// ambient message loss. Whatever the history, the audited raft invariants
// must hold — at most one leader (and one commit-advancing leader) per
// term, committed epoch numbers gap-free and monotone per job
// incarnation, pairwise-consistent committed log prefixes — the job must
// finish, and the committed-work watermark must never silently regress.
//
// Oracle detection mode on purpose: killed replicas are revived when the
// recovery attempt starts, so the quorum always comes back and an
// election can settle (with wire-true detection a dead replica stays down
// until a scripted repair — the partition_drill suite covers that side).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/runtime.hpp"
#include "failure/injector.hpp"

namespace vdc::core {
namespace {

// Seed budget: 8 by default; the nightly sanitizer job widens it with
// VDC_FUZZ_SEEDS=1000.
int fuzz_seed_count() {
  if (const char* env = std::getenv("VDC_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

ClusterConfig fuzz_cluster() {
  ClusterConfig cc;
  cc.nodes = 6;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 16;
  cc.write_rate = 150.0;
  return cc;
}

JobRunner::BackendFactory dvdc_factory(ClusterConfig cc) {
  return [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
              Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, ProtocolConfig{},
                                         RecoveryConfig{},
                                         make_workload_factory(cc));
  };
}

/// Random leader-targeted drill: kills and partition/heal pairs at
/// increasing times, early enough that the job can still finish.
std::string random_drill(Rng& rng) {
  std::string script;
  char buf[64];
  double t = 30.0 + rng.uniform(0.0, 40.0);
  const int events = 2 + static_cast<int>(rng.uniform_u64(3));
  for (int i = 0; i < events && t < 360.0; ++i) {
    if (rng.chance(0.5)) {
      std::snprintf(buf, sizeof(buf), "kill-leader at %.3f\n", t);
      script += buf;
    } else {
      std::snprintf(buf, sizeof(buf), "partition-leader at %.3f 1\n", t);
      script += buf;
      t += 5.0 + rng.uniform(0.0, 10.0);
      std::snprintf(buf, sizeof(buf), "heal %.3f all\n", t);
      script += buf;
    }
    t += 25.0 + rng.uniform(0.0, 40.0);
  }
  return script;
}

struct FuzzOutcome {
  RunResult result;
  std::uint64_t elections = 0;
  std::uint64_t view_epoch = 0;
};

FuzzOutcome run_drill(int seed, bool check_invariants = true) {
  Rng script_rng(0xC0FFEEull + static_cast<std::uint64_t>(seed) * 7919);
  JobConfig job;
  job.total_work = minutes(8);
  job.interval = minutes(1);
  job.seed = 1000 + static_cast<std::uint64_t>(seed);
  job.control = controlplane::ControlPlaneConfig{};
  job.failure_schedule =
      failure::ScheduledFailureInjector::parse(random_drill(script_rng));
  if (seed % 2 == 0) {
    net::LinkFault ambient;
    ambient.drop = 0.002;
    ambient.corrupt = 0.002;
    job.ambient_link_fault = ambient;
  }
  double watermark = 0.0;
  job.observer = [&watermark](const JobEvent& ev) {
    if (ev.kind == JobEvent::Kind::Rollback ||
        ev.kind == JobEvent::Kind::Restart) {
      watermark = ev.committed_work;
    } else {
      EXPECT_GE(ev.committed_work, watermark - 1e-9);
      watermark = std::max(watermark, ev.committed_work);
    }
  };

  JobRunner runner(job, fuzz_cluster(), dvdc_factory(fuzz_cluster()));
  FuzzOutcome out;
  out.result = runner.run();
  auto* cp = runner.control();
  EXPECT_NE(cp, nullptr);
  out.elections = cp->elections();
  if (check_invariants) {
    EXPECT_TRUE(out.result.finished) << "seed " << seed;
    EXPECT_TRUE(cp->election_safety_ok()) << "seed " << seed;
    EXPECT_TRUE(cp->epoch_sequence_ok()) << "seed " << seed;
    EXPECT_TRUE(cp->logs_consistent()) << "seed " << seed;
    // The surviving leader's replayed view agrees with the data plane
    // about what committed (both reset together on a job restart).
    if (cp->leader().has_value()) {
      out.view_epoch = cp->leader_view()->committed_epoch;
      EXPECT_EQ(out.view_epoch, runner.backend()->committed_epoch())
          << "seed " << seed;
    }
  }
  return out;
}

class ControlPlaneFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ControlPlaneFuzz, SafetyInvariantsHoldUnderLeaderFaults) {
  const int seed = GetParam();
  const FuzzOutcome out = run_drill(seed);
  // Every drill schedules at least one leader-targeted event; unless all
  // of them fizzled in an election gap, elections must have happened.
  if (out.result.failures > 0) {
    EXPECT_GE(out.elections, 1u);
  }

  // Determinism spot-check: a replay of the same seed is bit-identical.
  if (seed % 4 == 0) {
    const FuzzOutcome again = run_drill(seed, /*check_invariants=*/false);
    EXPECT_DOUBLE_EQ(again.result.completion, out.result.completion);
    EXPECT_EQ(again.result.epochs, out.result.epochs);
    EXPECT_EQ(again.result.failures, out.result.failures);
    EXPECT_EQ(again.elections, out.elections);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlPlaneFuzz,
                         ::testing::Range(0, fuzz_seed_count()));

}  // namespace
}  // namespace vdc::core
