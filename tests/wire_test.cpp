// Tests for CRC-32, the checkpoint wire format, and the thread-parallel
// parity kernels.

#include <gtest/gtest.h>

#include "checkpoint/wire.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "parity/parallel.hpp"
#include "parity/xor.hpp"

namespace vdc {
namespace {

std::vector<std::byte> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

TEST(Crc32, KnownVectors) {
  // Classic check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const std::byte*>(s), 9}), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, ChunkedEqualsWhole) {
  Rng rng(1);
  const auto data = random_bytes(rng, 1000);
  const auto whole = crc32(data);
  const auto part1 =
      crc32({data.data(), 400});
  const auto chunked = crc32({data.data() + 400, 600}, part1);
  EXPECT_EQ(chunked, whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng rng(2);
  auto data = random_bytes(rng, 256);
  const auto before = crc32(data);
  data[100] ^= std::byte{0x01};
  EXPECT_NE(crc32(data), before);
}

TEST(Wire, RoundtripPreservesEverything) {
  Rng rng(3);
  checkpoint::Checkpoint cp;
  cp.vm = 42;
  cp.epoch = 1234567890123ull;
  cp.page_size = 4096;
  cp.payload = random_bytes(rng, 10000);

  const auto frame = checkpoint::encode_frame(cp);
  EXPECT_EQ(frame.size(), checkpoint::frame_size(cp.payload.size()));
  const auto back = checkpoint::decode_frame(frame);
  EXPECT_EQ(back.vm, cp.vm);
  EXPECT_EQ(back.epoch, cp.epoch);
  EXPECT_EQ(back.page_size, cp.page_size);
  EXPECT_EQ(back.payload, cp.payload);
}

TEST(Wire, EmptyPayloadRoundtrips) {
  checkpoint::Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 1;
  cp.page_size = 4096;
  const auto frame = checkpoint::encode_frame(cp);
  EXPECT_EQ(checkpoint::decode_frame(frame).payload.size(), 0u);
}

TEST(Wire, RejectsTruncation) {
  Rng rng(4);
  checkpoint::Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 2;
  cp.page_size = 64;
  cp.payload = random_bytes(rng, 500);
  auto frame = checkpoint::encode_frame(cp);
  frame.resize(frame.size() - 1);
  EXPECT_THROW(checkpoint::decode_frame(frame), checkpoint::WireError);
  EXPECT_THROW(checkpoint::decode_frame({frame.data(), 10}),
               checkpoint::WireError);
}

TEST(Wire, RejectsBadMagicAndCorruptHeader) {
  checkpoint::Checkpoint cp;
  cp.vm = 7;
  cp.epoch = 9;
  cp.page_size = 64;
  cp.payload.assign(64, std::byte{0x5a});
  auto frame = checkpoint::encode_frame(cp);

  auto bad_magic = frame;
  bad_magic[0] = std::byte{'X'};
  EXPECT_THROW(checkpoint::decode_frame(bad_magic), checkpoint::WireError);

  auto bad_header = frame;
  bad_header[12] ^= std::byte{0xff};  // epoch field, covered by header crc
  EXPECT_THROW(checkpoint::decode_frame(bad_header), checkpoint::WireError);
}

TEST(Wire, RejectsPayloadBitFlip) {
  Rng rng(5);
  checkpoint::Checkpoint cp;
  cp.vm = 7;
  cp.epoch = 9;
  cp.page_size = 64;
  cp.payload = random_bytes(rng, 4096);
  auto frame = checkpoint::encode_frame(cp);
  frame[40 + 2000] ^= std::byte{0x01};
  EXPECT_THROW(checkpoint::decode_frame(frame), checkpoint::WireError);
}

TEST(ParallelParity, MatchesSerialAcrossThreadCounts) {
  Rng rng(6);
  for (std::size_t size : {100u, 4096u, 1u << 20}) {
    const auto src = random_bytes(rng, size);
    const auto base = random_bytes(rng, size);
    auto expect = base;
    parity::xor_into(expect, src);
    for (unsigned threads : {1u, 2u, 4u, 9u}) {
      auto dst = base;
      parity::parallel_xor_into(dst, src, threads);
      ASSERT_EQ(dst, expect) << "size " << size << " threads " << threads;
    }
  }
}

TEST(ParallelParity, XorAllMatchesSerialReduce) {
  Rng rng(7);
  std::vector<parity::Block> sources;
  for (int i = 0; i < 5; ++i) sources.push_back(random_bytes(rng, 1 << 19));
  std::vector<parity::BlockView> views(sources.begin(), sources.end());

  parity::Block expect(sources[0].size(), std::byte{0});
  for (const auto& s : sources) parity::xor_into(expect, s);

  for (unsigned threads : {1u, 3u, 8u})
    EXPECT_EQ(parity::parallel_xor_all(views, threads), expect);
}

TEST(ParallelParity, SmallBuffersStaySerial) {
  // Below the shard threshold the work must still be correct (and not
  // spawn threads, though that part is unobservable here).
  Rng rng(8);
  const auto src = random_bytes(rng, 64);
  auto dst = random_bytes(rng, 64);
  auto expect = dst;
  parity::xor_into(expect, src);
  parity::parallel_xor_into(dst, src, 16);
  EXPECT_EQ(dst, expect);
}

TEST(ParallelParity, DefaultThreadsSane) {
  const unsigned n = parity::default_parity_threads();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

TEST(ParallelParity, SizeMismatchThrows) {
  std::vector<std::byte> a(10), b(11);
  EXPECT_THROW(parity::parallel_xor_into(a, b, 2), InvariantError);
}

}  // namespace
}  // namespace vdc
