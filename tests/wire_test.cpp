// Tests for CRC-32, the checkpoint wire format, and the thread-parallel
// parity kernels.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <string>

#include "checkpoint/wire.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "parity/parallel.hpp"
#include "parity/pool.hpp"
#include "parity/xor.hpp"

namespace vdc {
namespace {

std::vector<std::byte> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

TEST(Crc32, KnownVectors) {
  // Classic check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const std::byte*>(s), 9}), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

// Bitwise reference implementation (no tables): the definition the
// slice-by-8 production code must agree with on every input.
std::uint32_t crc32_bitwise(std::span<const std::byte> data,
                            std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c ^= static_cast<std::uint32_t>(b);
    for (int k = 0; k < 8; ++k)
      c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
  }
  return c ^ 0xFFFFFFFFu;
}

TEST(Crc32, MatchesBitwiseReferenceOnOneMiB) {
  Rng rng(42);
  const auto data = random_bytes(rng, 1u << 20);
  EXPECT_EQ(crc32(data), crc32_bitwise(data));
  // Unaligned start/length exercise the slice-by-8 head and tail paths.
  const std::span<const std::byte> odd{data.data() + 3, (1u << 20) - 7};
  EXPECT_EQ(crc32(odd), crc32_bitwise(odd));
}

TEST(Crc32, SeedChainingMatchesBitwiseReference) {
  Rng rng(43);
  const auto data = random_bytes(rng, 777);
  const auto part1 = crc32({data.data(), 123});
  EXPECT_EQ(crc32({data.data() + 123, 777 - 123}, part1),
            crc32_bitwise(data));
}

TEST(Crc32, ChunkedEqualsWhole) {
  Rng rng(1);
  const auto data = random_bytes(rng, 1000);
  const auto whole = crc32(data);
  const auto part1 =
      crc32({data.data(), 400});
  const auto chunked = crc32({data.data() + 400, 600}, part1);
  EXPECT_EQ(chunked, whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng rng(2);
  auto data = random_bytes(rng, 256);
  const auto before = crc32(data);
  data[100] ^= std::byte{0x01};
  EXPECT_NE(crc32(data), before);
}

TEST(Wire, RoundtripPreservesEverything) {
  Rng rng(3);
  checkpoint::Checkpoint cp;
  cp.vm = 42;
  cp.epoch = 1234567890123ull;
  cp.page_size = 4096;
  cp.payload = random_bytes(rng, 10000);

  const auto frame = checkpoint::encode_frame(cp);
  EXPECT_EQ(frame.size(), checkpoint::frame_size(cp.payload.size()));
  const auto back = checkpoint::decode_frame(frame);
  EXPECT_EQ(back.vm, cp.vm);
  EXPECT_EQ(back.epoch, cp.epoch);
  EXPECT_EQ(back.page_size, cp.page_size);
  EXPECT_EQ(back.payload, cp.payload);
}

TEST(Wire, EmptyPayloadRoundtrips) {
  checkpoint::Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 1;
  cp.page_size = 4096;
  const auto frame = checkpoint::encode_frame(cp);
  EXPECT_EQ(checkpoint::decode_frame(frame).payload.size(), 0u);
}

TEST(Wire, RejectsTruncation) {
  Rng rng(4);
  checkpoint::Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 2;
  cp.page_size = 64;
  cp.payload = random_bytes(rng, 500);
  auto frame = checkpoint::encode_frame(cp);
  frame.resize(frame.size() - 1);
  EXPECT_THROW(checkpoint::decode_frame(frame), checkpoint::WireError);
  EXPECT_THROW(checkpoint::decode_frame({frame.data(), 10}),
               checkpoint::WireError);
}

TEST(Wire, RejectsBadMagicAndCorruptHeader) {
  checkpoint::Checkpoint cp;
  cp.vm = 7;
  cp.epoch = 9;
  cp.page_size = 64;
  cp.payload.assign(64, std::byte{0x5a});
  auto frame = checkpoint::encode_frame(cp);

  auto bad_magic = frame;
  bad_magic[0] = std::byte{'X'};
  EXPECT_THROW(checkpoint::decode_frame(bad_magic), checkpoint::WireError);

  auto bad_header = frame;
  bad_header[12] ^= std::byte{0xff};  // epoch field, covered by header crc
  EXPECT_THROW(checkpoint::decode_frame(bad_header), checkpoint::WireError);
}

TEST(Wire, RejectsPayloadBitFlip) {
  Rng rng(5);
  checkpoint::Checkpoint cp;
  cp.vm = 7;
  cp.epoch = 9;
  cp.page_size = 64;
  cp.payload = random_bytes(rng, 4096);
  auto frame = checkpoint::encode_frame(cp);
  frame[40 + 2000] ^= std::byte{0x01};
  EXPECT_THROW(checkpoint::decode_frame(frame), checkpoint::WireError);
}

TEST(Wire, EverySingleBitFlipIsRejected) {
  // Property: flipping ANY single bit of a sealed frame must make decode
  // throw — the unreliable fabric flips arbitrary bits, and no flip may
  // slip a corrupted image into a guest. Also checks that each distinct
  // rejection branch (magic, header crc, payload crc) actually fires.
  Rng rng(6);
  checkpoint::Checkpoint cp;
  cp.vm = 11;
  cp.epoch = 0xfeedbeefcafe;
  cp.page_size = 128;
  cp.payload = random_bytes(rng, 256);
  const auto frame = checkpoint::encode_frame(cp);
  std::set<std::string> reasons;
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    auto flipped = frame;
    flipped[bit / 8] ^= std::byte{1} << (bit % 8);
    try {
      checkpoint::decode_frame(flipped);
      FAIL() << "bit " << bit << " flip decoded successfully";
    } catch (const checkpoint::WireError& e) {
      reasons.insert(e.what());
    }
  }
  EXPECT_TRUE(reasons.count("checkpoint frame: bad magic"));
  EXPECT_TRUE(reasons.count("checkpoint frame: header crc mismatch"));
  EXPECT_TRUE(reasons.count("checkpoint frame: payload crc mismatch"));
}

TEST(Wire, RejectsExtension) {
  // A frame longer than its declared payload hits the length branch.
  Rng rng(7);
  checkpoint::Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 2;
  cp.page_size = 64;
  cp.payload = random_bytes(rng, 100);
  auto frame = checkpoint::encode_frame(cp);
  frame.push_back(std::byte{0});
  try {
    checkpoint::decode_frame(frame);
    FAIL() << "extended frame decoded successfully";
  } catch (const checkpoint::WireError& e) {
    EXPECT_STREQ(e.what(), "checkpoint frame: length mismatch");
  }
}

checkpoint::CheckpointDelta sample_delta(Rng& rng) {
  checkpoint::CheckpointDelta cd;
  cd.vm = 23;
  cd.epoch = 9;
  cd.base_epoch = 8;
  cd.delta.page_size = 128;
  cd.delta.pages = {1, 4, 5, 30};
  cd.delta.payload.push_back(random_bytes(rng, 60));
  cd.delta.payload.push_back(random_bytes(rng, 128));
  cd.delta.payload.push_back({});  // a page whose xor RLEs to nothing
  cd.delta.payload.push_back(random_bytes(rng, 17));
  return cd;
}

TEST(DeltaWire, RoundtripPreservesEverything) {
  Rng rng(8);
  const auto cd = sample_delta(rng);
  const auto frame = checkpoint::encode_delta_frame(cd);
  EXPECT_EQ(frame.size(), checkpoint::delta_frame_size(cd.delta));
  EXPECT_EQ(frame.size(),
            checkpoint::delta_frame_size(4, 60 + 128 + 0 + 17));
  const auto back = checkpoint::decode_delta_frame(frame);
  EXPECT_EQ(back.vm, cd.vm);
  EXPECT_EQ(back.epoch, cd.epoch);
  EXPECT_EQ(back.base_epoch, cd.base_epoch);
  EXPECT_EQ(back.delta.page_size, cd.delta.page_size);
  EXPECT_EQ(back.delta.pages, cd.delta.pages);
  EXPECT_EQ(back.delta.payload, cd.delta.payload);
}

TEST(DeltaWire, EmptyDeltaRoundtrips) {
  checkpoint::CheckpointDelta cd;
  cd.vm = 1;
  cd.epoch = 2;
  cd.base_epoch = 1;
  const auto frame = checkpoint::encode_delta_frame(cd);
  EXPECT_EQ(frame.size(), 56u);
  const auto back = checkpoint::decode_delta_frame(frame);
  EXPECT_TRUE(back.delta.pages.empty());
}

TEST(DeltaWire, EverySingleBitFlipIsRejected) {
  // Property: flipping ANY single bit of a sealed delta frame must make
  // decode throw. A slipped flip would fold garbage into standing parity
  // and silently poison every later recovery from that stripe — strictly
  // worse than corrupting one full checkpoint. Also checks each distinct
  // rejection branch fires.
  Rng rng(9);
  const auto cd = sample_delta(rng);
  const auto frame = checkpoint::encode_delta_frame(cd);
  std::set<std::string> reasons;
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    auto flipped = frame;
    flipped[bit / 8] ^= std::byte{1} << (bit % 8);
    try {
      checkpoint::decode_delta_frame(flipped);
      FAIL() << "bit " << bit << " flip decoded successfully";
    } catch (const checkpoint::WireError& e) {
      reasons.insert(e.what());
    }
  }
  EXPECT_TRUE(reasons.count("delta frame: bad magic"));
  EXPECT_TRUE(reasons.count("delta frame: header crc mismatch"));
  EXPECT_TRUE(reasons.count("delta frame: payload crc mismatch"));
}

TEST(DeltaWire, RejectsTruncationAndExtension) {
  Rng rng(10);
  const auto cd = sample_delta(rng);
  auto frame = checkpoint::encode_delta_frame(cd);

  auto shorter = frame;
  shorter.resize(shorter.size() - 1);
  EXPECT_THROW(checkpoint::decode_delta_frame(shorter),
               checkpoint::WireError);
  EXPECT_THROW(checkpoint::decode_delta_frame({frame.data(), 20}),
               checkpoint::WireError);

  auto longer = frame;
  longer.push_back(std::byte{0});
  try {
    checkpoint::decode_delta_frame(longer);
    FAIL() << "extended delta frame decoded successfully";
  } catch (const checkpoint::WireError& e) {
    EXPECT_STREQ(e.what(), "delta frame: length mismatch");
  }
}

TEST(DeltaWire, RejectsMalformedPayloadStructure) {
  // Structural validation beyond the CRCs: decode must reject records
  // that overrun the payload, out-of-order pages, and trailing bytes even
  // when the CRCs are recomputed to match (a forged frame, not a flip).
  const auto reseal = [](std::vector<std::byte> frame) {
    const std::uint32_t pcrc = crc32(
        std::span<const std::byte>(frame.data() + 56, frame.size() - 56));
    std::memcpy(frame.data() + 52, &pcrc, 4);
    const std::uint32_t hcrc =
        crc32(std::span<const std::byte>(frame.data() + 8, 48));
    std::memcpy(frame.data() + 4, &hcrc, 4);
    return frame;
  };
  Rng rng(11);
  const auto good = checkpoint::encode_delta_frame(sample_delta(rng));

  auto overrun = good;
  // First record claims more content than the payload holds.
  const std::uint32_t huge = 1u << 30;
  std::memcpy(overrun.data() + 56 + 4, &huge, 4);
  EXPECT_THROW(checkpoint::decode_delta_frame(reseal(overrun)),
               checkpoint::WireError);

  auto unordered = good;
  // Second record's page index rewound below the first's.
  const std::uint32_t zero = 0;
  std::memcpy(unordered.data() + 56 + 8 + 60, &zero, 4);
  EXPECT_THROW(checkpoint::decode_delta_frame(reseal(unordered)),
               checkpoint::WireError);

  checkpoint::CheckpointDelta empty;
  auto trailing = checkpoint::encode_delta_frame(empty);
  trailing.resize(trailing.size() + 8);  // bytes after the last record
  const std::uint64_t len = 8;
  std::memcpy(trailing.data() + 44, &len, 8);
  try {
    checkpoint::decode_delta_frame(reseal(trailing));
    FAIL() << "trailing payload decoded successfully";
  } catch (const checkpoint::WireError& e) {
    EXPECT_STREQ(e.what(), "delta frame: trailing payload bytes");
  }
}

TEST(ParallelParity, MatchesSerialAcrossThreadCounts) {
  Rng rng(6);
  for (std::size_t size : {100u, 4096u, 1u << 20}) {
    const auto src = random_bytes(rng, size);
    const auto base = random_bytes(rng, size);
    auto expect = base;
    parity::xor_into(expect, src);
    for (unsigned threads : {1u, 2u, 4u, 9u}) {
      auto dst = base;
      parity::parallel_xor_into(dst, src, threads);
      ASSERT_EQ(dst, expect) << "size " << size << " threads " << threads;
    }
  }
}

TEST(ParallelParity, XorAllMatchesSerialReduce) {
  Rng rng(7);
  std::vector<parity::Block> sources;
  for (int i = 0; i < 5; ++i) sources.push_back(random_bytes(rng, 1 << 19));
  std::vector<parity::BlockView> views(sources.begin(), sources.end());

  parity::Block expect(sources[0].size(), std::byte{0});
  for (const auto& s : sources) parity::xor_into(expect, s);

  for (unsigned threads : {1u, 3u, 8u})
    EXPECT_EQ(parity::parallel_xor_all(views, threads), expect);
}

TEST(ParallelParity, SmallBuffersStaySerial) {
  // Below the shard threshold the work must still be correct (and not
  // spawn threads, though that part is unobservable here).
  Rng rng(8);
  const auto src = random_bytes(rng, 64);
  auto dst = random_bytes(rng, 64);
  auto expect = dst;
  parity::xor_into(expect, src);
  parity::parallel_xor_into(dst, src, 16);
  EXPECT_EQ(dst, expect);
}

TEST(ParallelParity, DefaultThreadsSane) {
  const unsigned n = parity::default_parity_threads();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

TEST(ParallelParity, SizeMismatchThrows) {
  std::vector<std::byte> a(10), b(11);
  EXPECT_THROW(parity::parallel_xor_into(a, b, 2), InvariantError);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  parity::ThreadPool pool(4);
  std::vector<int> hits(1000, 0);  // disjoint slots, no synchronisation
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, NestedRunFallsBackToSerial) {
  auto& pool = parity::ThreadPool::shared();
  std::atomic<int> total{0};
  pool.run(8, [&](std::size_t) {
    pool.run(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(AllZero, WordBlockedPathsAgreeWithDefinition) {
  // Sizes straddle the 32-byte block and 8-byte word boundaries of the
  // blocked implementation; a lone non-zero byte anywhere must be seen.
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 31u, 32u, 33u, 63u, 64u,
                           65u, 256u, 1000u}) {
    std::vector<std::byte> buf(size, std::byte{0});
    EXPECT_TRUE(parity::all_zero(buf)) << "size " << size;
    for (std::size_t pos : {std::size_t{0}, size / 2, size - 1}) {
      if (size == 0) break;
      auto dirty = buf;
      dirty[pos] = std::byte{0x80};
      EXPECT_FALSE(parity::all_zero(dirty))
          << "size " << size << " pos " << pos;
    }
  }
}

}  // namespace
}  // namespace vdc
