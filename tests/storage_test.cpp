// Tests for the disk and NAS models: service times, FCFS queueing,
// and the two-stage (network + array) NAS path.

#include <gtest/gtest.h>

#include "storage/disk.hpp"
#include "storage/nas.hpp"

namespace vdc::storage {
namespace {

DiskSpec simple_disk() {
  DiskSpec spec;
  spec.write_bandwidth = 100.0;  // B/s — easy arithmetic
  spec.read_bandwidth = 200.0;
  spec.access_latency = 1.0;
  return spec;
}

TEST(Disk, WriteServiceTime) {
  simkit::Simulator sim;
  Disk disk(sim, simple_disk());
  EXPECT_DOUBLE_EQ(disk.write_service_time(500), 6.0);  // 1 + 500/100
  EXPECT_DOUBLE_EQ(disk.read_service_time(500), 3.5);   // 1 + 500/200
}

TEST(Disk, WriteCompletesAtServiceTime) {
  simkit::Simulator sim;
  Disk disk(sim, simple_disk());
  double done = -1;
  disk.write(500, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 6.0);
  EXPECT_EQ(disk.bytes_written(), 500u);
}

TEST(Disk, RequestsSerialise) {
  simkit::Simulator sim;
  Disk disk(sim, simple_disk());
  std::vector<double> done;
  disk.write(100, [&] { done.push_back(sim.now()); });  // 2s
  disk.write(100, [&] { done.push_back(sim.now()); });  // +2s
  disk.read(200, [&] { done.push_back(sim.now()); });   // +2s
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 4.0);
  EXPECT_DOUBLE_EQ(done[2], 6.0);
}

TEST(Disk, InvalidSpecRejected) {
  simkit::Simulator sim;
  DiskSpec bad;
  bad.write_bandwidth = 0;
  EXPECT_THROW(Disk(sim, bad), ConfigError);
}

TEST(Nas, StoreGoesThroughFrontendThenArray) {
  simkit::Simulator sim;
  net::Fabric fabric(sim, 0.0);
  const net::HostId h = fabric.add_host(1000.0);
  NasSpec spec;
  spec.frontend_rate = 100.0;
  spec.array = DiskSpec{100.0, 100.0, 0.0};
  Nas nas(sim, fabric, spec);
  double done = -1;
  nas.store(h, 1000, [&] { done = sim.now(); });
  sim.run();
  // 10s network + 10s array write.
  EXPECT_DOUBLE_EQ(done, 20.0);
  EXPECT_EQ(nas.bytes_stored(), 1000u);
}

TEST(Nas, ConcurrentStoresContendOnFrontend) {
  simkit::Simulator sim;
  net::Fabric fabric(sim, 0.0);
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 4; ++i) hosts.push_back(fabric.add_host(1000.0));
  NasSpec spec;
  spec.frontend_rate = 100.0;
  spec.array = DiskSpec{1e9, 1e9, 0.0};  // array not the bottleneck
  Nas nas(sim, fabric, spec);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i)
    nas.store(hosts[i], 1000, [&] { done.push_back(sim.now()); });
  sim.run();
  // Four 1000 B streams share 100 B/s: all network-done at 40s; the
  // (practically infinite) array then serialises microsecond writes.
  ASSERT_EQ(done.size(), 4u);
  for (double d : done) EXPECT_NEAR(d, 40.0, 1e-4);
}

TEST(Nas, ArraySerialisesAfterNetwork) {
  simkit::Simulator sim;
  net::Fabric fabric(sim, 0.0);
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 2; ++i) hosts.push_back(fabric.add_host(1000.0));
  NasSpec spec;
  spec.frontend_rate = 1000.0;
  spec.array = DiskSpec{100.0, 100.0, 0.0};
  Nas nas(sim, fabric, spec);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i)
    nas.store(hosts[i], 1000, [&] { done.push_back(sim.now()); });
  sim.run();
  // Both arrive at t=2 (sharing the 1000 B/s frontend), then the array
  // writes serialise: 10s each.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 12.0, 1e-6);
  EXPECT_NEAR(done[1], 22.0, 1e-6);
}

TEST(Nas, FetchReadsArrayThenNetwork) {
  simkit::Simulator sim;
  net::Fabric fabric(sim, 0.0);
  const net::HostId h = fabric.add_host(1000.0);
  NasSpec spec;
  spec.frontend_rate = 100.0;
  spec.array = DiskSpec{100.0, 200.0, 0.0};
  Nas nas(sim, fabric, spec);
  double done = -1;
  nas.fetch(h, 1000, [&] { done = sim.now(); });
  sim.run();
  // 5s array read + 10s network.
  EXPECT_DOUBLE_EQ(done, 15.0);
}

}  // namespace
}  // namespace vdc::storage
