// Tests for the MTTDL reliability model and the two-level
// (diskless + NAS) checkpoint backend.

#include <gtest/gtest.h>

#include "core/twolevel.hpp"
#include "model/reliability.hpp"

namespace vdc {
namespace {

// --- MTTDL ------------------------------------------------------------------

TEST(Mttdl, SinglesDiskFormulaMatchesClassic) {
  // m=1: MTTDL ~= MTBF^2 / (w (w-1) MTTR) for MTTR << MTBF.
  model::StripeReliability config;
  config.width = 4;
  config.tolerance = 1;
  config.node_mtbf = hours(1000);
  config.mttr = minutes(10);
  const double classic = config.node_mtbf * config.node_mtbf /
                         (4.0 * 3.0 * config.mttr);
  EXPECT_NEAR(mttdl(config) / classic, 1.0, 0.01);
}

TEST(Mttdl, MoreParityMeansVastlyLongerLife) {
  model::StripeReliability config;
  config.width = 6;
  config.node_mtbf = hours(500);
  config.mttr = minutes(30);
  config.tolerance = 1;
  const double m1 = model::mttdl(config);
  config.tolerance = 2;
  const double m2 = model::mttdl(config);
  config.tolerance = 3;
  const double m3 = model::mttdl(config);
  EXPECT_GT(m2, m1 * 50);
  EXPECT_GT(m3, m2 * 50);
}

TEST(Mttdl, FasterRepairHelps) {
  model::StripeReliability config;
  config.width = 4;
  config.tolerance = 1;
  config.node_mtbf = hours(100);
  config.mttr = minutes(60);
  const double slow = model::mttdl(config);
  config.mttr = minutes(6);
  // First-order: 10x; higher-order chain terms shave a few percent.
  EXPECT_NEAR(model::mttdl(config) / slow, 10.0, 1.0);
}

TEST(Mttdl, MonteCarloAgreesWithChain) {
  model::StripeReliability config;
  config.width = 4;
  config.tolerance = 1;
  config.node_mtbf = 100.0;  // short scales so trials are cheap
  config.mttr = 5.0;
  const double analytic = model::mttdl(config);
  const auto mc = model::simulate_mttdl(config, 4000, Rng(3));
  EXPECT_NEAR(mc.mean(), analytic, 4 * mc.ci95_halfwidth());
}

TEST(Mttdl, MonteCarloAgreesForDoubleParity) {
  model::StripeReliability config;
  config.width = 5;
  config.tolerance = 2;
  config.node_mtbf = 50.0;
  config.mttr = 10.0;
  const double analytic = model::mttdl(config);
  const auto mc = model::simulate_mttdl(config, 4000, Rng(4));
  EXPECT_NEAR(mc.mean(), analytic, 4 * mc.ci95_halfwidth());
}

TEST(Mttdl, ClusterScalesDownWithGroups) {
  model::StripeReliability config;
  EXPECT_NEAR(model::cluster_mttdl(config, 4), model::mttdl(config) / 4.0,
              1e-6);
}

TEST(Mttdl, InvalidConfigRejected) {
  model::StripeReliability bad;
  bad.width = 1;
  EXPECT_THROW(model::mttdl(bad), ConfigError);
  bad = model::StripeReliability{};
  bad.tolerance = bad.width;
  EXPECT_THROW(model::mttdl(bad), ConfigError);
}

// --- two-level backend --------------------------------------------------------

core::ClusterConfig small_cluster() {
  core::ClusterConfig cc;
  cc.nodes = 5;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 16;
  cc.write_rate = 150.0;
  return cc;
}

core::JobRunner::BackendFactory twolevel_factory(core::TwoLevelConfig tl,
                                                 core::ClusterConfig cc) {
  return [tl, cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
                  Rng&) -> std::unique_ptr<core::CheckpointBackend> {
    core::PlannerConfig planner;
    planner.group_size = 4;  // RAID-5: a double failure is catastrophic
    return std::make_unique<core::TwoLevelBackend>(
        sim, cluster, core::ProtocolConfig{}, core::RecoveryConfig{},
        core::make_workload_factory(cc), tl, planner);
  };
}

TEST(TwoLevel, FlushesOnCadence) {
  core::JobConfig job;
  job.total_work = minutes(35);
  job.interval = minutes(5);
  job.lambda = 0.0;
  core::TwoLevelConfig tl;
  tl.flush_every = 3;
  const auto cc = small_cluster();
  core::JobRunner runner(job, cc, twolevel_factory(tl, cc));
  const auto result = runner.run();
  ASSERT_TRUE(result.finished);
  // 6 epochs commit (at 5..30 min); flushes after epochs 3 and 6.
  EXPECT_EQ(result.epochs, 6u);
  auto* backend = dynamic_cast<core::TwoLevelBackend*>(runner.backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->flushed_epoch(), 6u);
  EXPECT_EQ(backend->level2_restores(), 0u);
}

TEST(TwoLevel, OrdinaryFailuresStayDiskless) {
  core::JobConfig job;
  job.total_work = minutes(40);
  job.interval = minutes(4);
  job.lambda = 1.0 / minutes(10);
  job.seed = 6;
  core::TwoLevelConfig tl;
  tl.flush_every = 2;
  const auto cc = small_cluster();
  core::JobRunner runner(job, cc, twolevel_factory(tl, cc));
  const auto result = runner.run();
  ASSERT_TRUE(result.finished);
  EXPECT_GT(result.failures, 0u);
  auto* backend = dynamic_cast<core::TwoLevelBackend*>(runner.backend());
  // Single-node failures are within RAID-5 tolerance: no L2 restores.
  EXPECT_EQ(backend->level2_restores(), 0u);
  EXPECT_EQ(result.job_restarts, 0u);
}

TEST(TwoLevel, CatastrophicLossFallsBackToNasInsteadOfScratch) {
  // Drive the catastrophe deterministically: checkpoint, flush, then kill
  // two member nodes of one group simultaneously.
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(9));
  const auto cc = small_cluster();
  auto workloads = core::make_workload_factory(cc);
  for (std::uint32_t n = 0; n < cc.nodes; ++n) cluster.add_node();
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    for (std::uint32_t v = 0; v < cc.vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

  core::TwoLevelConfig tl;
  tl.flush_every = 1;  // every epoch becomes durable
  core::PlannerConfig planner;
  planner.group_size = 4;
  core::TwoLevelBackend backend(sim, cluster, core::ProtocolConfig{},
                                core::RecoveryConfig{}, workloads, tl,
                                planner);
  for (cluster::NodeId nid : cluster.alive_nodes())
    cluster.node(nid).hypervisor().pause_all();
  backend.checkpoint(1, [](const core::EpochStats&) {});
  sim.run();
  ASSERT_EQ(backend.flushed_epoch(), 1u);
  const auto durable_content = [&] {
    std::map<vm::VmId, std::vector<std::byte>> out;
    for (vm::VmId vmid : cluster.all_vms())
      out[vmid] = cluster.machine(vmid).image().flatten();
    return out;
  }();

  cluster.advance_workloads(10.0);

  // Double node failure: nodes 0 and 1 (each hosts members of the wide
  // groups) — beyond RAID-5.
  std::vector<vm::VmId> lost = cluster.node(0).hypervisor().vm_ids();
  const auto lost1 = cluster.node(1).hypervisor().vm_ids();
  lost.insert(lost.end(), lost1.begin(), lost1.end());
  cluster.kill_node(0);
  backend.on_node_failure(0);
  cluster.kill_node(1);
  backend.on_node_failure(1);
  cluster.revive_node(0);
  cluster.revive_node(1);
  std::optional<core::RecoveryStats> stats;
  backend.handle_failure(lost, [&](const core::RecoveryStats& s) {
    stats = s;
  });
  sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success) << stats->reason;
  EXPECT_EQ(backend.level2_restores(), 1u);
  EXPECT_EQ(stats->epochs_rolled_back, 0u);  // level was fully current

  // Every VM is back with the durable content.
  for (const auto& [vmid, payload] : durable_content) {
    ASSERT_TRUE(cluster.locate(vmid).has_value()) << "vm " << vmid;
    EXPECT_EQ(cluster.machine(vmid).image().flatten(), payload)
        << "vm " << vmid;
  }
}

TEST(TwoLevel, EndToEndUnderHeavyFailures) {
  // Aggressive failures + occasional pre-commit crashes: the two-level
  // backend must still finish, and any level-2 fallback shows up as
  // rolled-back work rather than a scratch restart.
  core::JobConfig job;
  job.total_work = minutes(30);
  job.interval = minutes(3);
  job.lambda = 1.0 / minutes(8);
  job.seed = 21;
  core::TwoLevelConfig tl;
  tl.flush_every = 2;
  const auto cc = small_cluster();
  core::JobRunner runner(job, cc, twolevel_factory(tl, cc));
  const auto result = runner.run();
  ASSERT_TRUE(result.finished);
  EXPECT_GT(result.failures, 0u);
}

}  // namespace
}  // namespace vdc
