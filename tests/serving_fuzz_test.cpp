// Output-commit property fuzz: serving under failures, lossy fabric and
// partitions. The invariant, per seed: a client never observes a response
// from an epoch that did not commit — every delivery's cut is <= the
// commit watermark at delivery time — and client-visible downtime is
// recorded whenever the cluster failed over with traffic flowing. Rides
// the `slow` label; the nightly job widens the sweep with VDC_FUZZ_SEEDS.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/runtime.hpp"

namespace vdc::core {
namespace {

int fuzz_seed_count() {
  if (const char* env = std::getenv("VDC_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 6;
}

ClusterConfig serving_cluster() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 16;
  cc.write_rate = 150.0;
  return cc;
}

workload::TrafficConfig serving_traffic() {
  workload::TrafficConfig tc;
  tc.clients_per_guest = 1000;
  tc.streams_per_guest = 2;
  tc.think_time = 20.0;  // aggregate: one request / 20 ms per stream
  tc.client_timeout = 2.0;
  tc.response_bytes = kib(2);
  tc.record_deliveries = true;
  return tc;
}

JobRunner::BackendFactory chunked_backend(ClusterConfig cc) {
  return [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
              Rng&) -> std::unique_ptr<CheckpointBackend> {
    ProtocolConfig pc;
    pc.chunking.chunk_bytes = kib(4);
    pc.chunking.pipeline_depth = 4;
    RecoveryConfig rc;
    rc.chunking = pc.chunking;
    return std::make_unique<DvdcBackend>(sim, cluster, pc, rc,
                                         make_workload_factory(cc));
  };
}

void check_invariants(JobRunner& runner, const RunResult& r) {
  EXPECT_TRUE(r.finished);
  ASSERT_NE(runner.traffic(), nullptr);
  const auto& plane = *runner.traffic();
  const auto s = plane.summary();
  EXPECT_GT(s.delivered, 0u) << "no client was ever answered";
  // The output-commit invariant: only committed epochs ever reach a
  // client. (TrafficPlane::deliver also hard-asserts this at the hatch.)
  for (const auto& d : plane.deliveries())
    EXPECT_LE(d.cut, d.committed_at_delivery)
        << "request " << d.request << " observed an uncommitted epoch";
  if (r.failures > 0) {
    // At least one failover struck with traffic flowing: the rollback
    // must have been client-visible (timeouts and retries, and a
    // downtime window that closed on the first post-recovery delivery).
    EXPECT_GT(s.timeouts + s.retries, 0u);
  }
}

class ServingLossyFuzz : public ::testing::TestWithParam<int> {};

// Lossy regime: ambient drops/corruption/jitter on every host (requests
// and responses ride the same judged fault plane as checkpoint frames)
// plus real Poisson node failures.
TEST_P(ServingLossyFuzz, CommittedPrefixOnly) {
  const int seed = GetParam();
  JobConfig job;
  job.total_work = minutes(6);
  job.interval = minutes(1);
  job.lambda = 1.0 / minutes(3);
  job.seed = static_cast<std::uint64_t>(seed);
  job.ambient_link_fault =
      net::LinkFault{.drop = 0.01, .corrupt = 0.001, .jitter = 200e-6};
  job.traffic = serving_traffic();

  const ClusterConfig cc = serving_cluster();
  JobRunner runner(job, cc, chunked_backend(cc));
  const RunResult r = runner.run();
  check_invariants(runner, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingLossyFuzz,
                         ::testing::Range(1, 1 + fuzz_seed_count()));

class ServingPartitionFuzz : public ::testing::TestWithParam<int> {};

// Partition regime: wire-true heartbeat detection, a scripted partition
// that isolates a node (false-positive suspicion, fencing, zombie rejoin)
// plus a real mid-run kill. Clients keep retrying throughout.
TEST_P(ServingPartitionFuzz, CommittedPrefixOnly) {
  const int seed = GetParam();
  JobConfig job;
  job.total_work = minutes(5);
  job.interval = minutes(1);
  job.seed = static_cast<std::uint64_t>(seed);
  job.heartbeat = cluster::HeartbeatConfig{};

  using SF = failure::ScheduledFailure;
  SF part;
  part.at = 70.0 + seed;  // vary the strike point across seeds
  part.node = 2;
  part.kind = SF::Kind::kPartition;
  part.group = 1;
  SF heal;
  heal.at = part.at + 20.0;
  heal.node = SF::kAllNodes;
  heal.kind = SF::Kind::kHeal;
  SF kill;
  kill.at = part.at + 60.0;
  kill.node = 1;
  kill.kind = SF::Kind::kFail;
  job.failure_schedule = {part, heal, kill};
  job.traffic = serving_traffic();

  const ClusterConfig cc = serving_cluster();
  JobRunner runner(job, cc, chunked_backend(cc));
  const RunResult r = runner.run();
  check_invariants(runner, r);
  EXPECT_GE(r.failures + static_cast<std::uint32_t>(
                             runner.sim().telemetry().metrics().value(
                                 "job.suspected_failures")),
            1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingPartitionFuzz,
                         ::testing::Range(1, 1 + fuzz_seed_count()));

}  // namespace
}  // namespace vdc::core
