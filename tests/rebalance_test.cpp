// Tests for cluster-aware live migration and the load rebalancer.

#include <gtest/gtest.h>

#include "cluster/rebalance.hpp"
#include "vm/workload.hpp"

namespace vdc::cluster {
namespace {

std::unique_ptr<vm::Workload> idle() {
  return std::make_unique<vm::IdleWorkload>();
}

struct Rig {
  simkit::Simulator sim;
  ClusterManager cluster{sim, Rng(1)};
  MigrationService migrations{sim, cluster};
  Rebalancer rebalancer{sim, cluster, migrations};

  explicit Rig(std::uint32_t nodes) {
    for (std::uint32_t i = 0; i < nodes; ++i) cluster.add_node();
  }
  vm::VmId boot(NodeId node) {
    return cluster.boot_vm(node, kib(4), 32, idle());
  }
  std::vector<std::size_t> loads() {
    std::vector<std::size_t> out;
    for (NodeId nid : cluster.alive_nodes())
      out.push_back(cluster.node(nid).hypervisor().vm_count());
    return out;
  }
};

TEST(MigrationService, UpdatesPlacementAndNames) {
  Rig rig(3);
  const auto vm = rig.boot(0);
  bool done = false;
  rig.migrations.migrate(vm, 2, [&](const migration::MigrationStats&) {
    done = true;
  });
  rig.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(rig.cluster.locate(vm), 2u);
  EXPECT_EQ(rig.cluster.names().resolve(vm), 2u);
  EXPECT_TRUE(rig.cluster.node(2).hypervisor().hosts(vm));
  EXPECT_FALSE(rig.cluster.node(0).hypervisor().hosts(vm));
  EXPECT_EQ(rig.cluster.machine(vm).state(), vm::VmState::Running);
}

TEST(MigrationService, ContentSurvives) {
  Rig rig(2);
  const auto vm = rig.boot(0);
  const auto content = rig.cluster.machine(vm).image().flatten();
  rig.migrations.migrate(vm, 1, [](const migration::MigrationStats&) {});
  rig.sim.run();
  EXPECT_EQ(rig.cluster.machine(vm).image().flatten(), content);
}

TEST(MigrationService, QueuesConcurrentRequests) {
  Rig rig(3);
  const auto a = rig.boot(0);
  const auto b = rig.boot(0);
  int completions = 0;
  rig.migrations.migrate(a, 1, [&](const migration::MigrationStats&) {
    ++completions;
  });
  rig.migrations.migrate(b, 2, [&](const migration::MigrationStats&) {
    ++completions;
  });
  EXPECT_TRUE(rig.migrations.busy());
  rig.sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(rig.migrations.completed(), 2u);
  EXPECT_EQ(rig.cluster.locate(a), 1u);
  EXPECT_EQ(rig.cluster.locate(b), 2u);
}

TEST(MigrationService, RejectsBadRequests) {
  Rig rig(2);
  const auto vm = rig.boot(0);
  EXPECT_THROW(rig.migrations.migrate(vm, 0, nullptr), ConfigError);
  EXPECT_THROW(rig.migrations.migrate(999, 1, nullptr), ConfigError);
  rig.cluster.kill_node(1);
  EXPECT_THROW(rig.migrations.migrate(vm, 1, nullptr), ConfigError);
}

TEST(Rebalancer, SmoothsSkewedLoad) {
  Rig rig(4);
  for (int i = 0; i < 8; ++i) rig.boot(0);  // everything on node 0
  std::optional<RebalanceStats> stats;
  rig.rebalancer.rebalance([&](const RebalanceStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->max_load_before, 8u);
  EXPECT_EQ(stats->max_load_after, 2u);
  EXPECT_EQ(stats->migrations, 6u);
  EXPECT_GT(stats->duration, 0.0);
  const auto loads = rig.loads();
  for (std::size_t load : loads) EXPECT_EQ(load, 2u);
}

TEST(Rebalancer, BalancedClusterIsNoop) {
  Rig rig(3);
  for (NodeId n = 0; n < 3; ++n) rig.boot(n);
  std::optional<RebalanceStats> stats;
  rig.rebalancer.rebalance([&](const RebalanceStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->migrations, 0u);
}

TEST(Rebalancer, SpreadOfOneIsAccepted) {
  Rig rig(2);
  rig.boot(0);
  rig.boot(0);
  rig.boot(0);  // 3 vs 0 -> should end 2 vs 1
  std::optional<RebalanceStats> stats;
  rig.rebalancer.rebalance([&](const RebalanceStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  const auto loads = rig.loads();
  EXPECT_LE(*std::max_element(loads.begin(), loads.end()),
            *std::min_element(loads.begin(), loads.end()) + 1);
}

TEST(Rebalancer, SkipsDeadNodes) {
  Rig rig(4);
  for (int i = 0; i < 6; ++i) rig.boot(0);
  rig.cluster.kill_node(3);
  std::optional<RebalanceStats> stats;
  rig.rebalancer.rebalance([&](const RebalanceStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  // 6 VMs over 3 alive nodes -> 2 each; node 3 untouched (dead).
  EXPECT_EQ(rig.cluster.node(0).hypervisor().vm_count(), 2u);
  EXPECT_EQ(rig.cluster.node(3).hypervisor().vm_count(), 0u);
}

TEST(Rebalancer, DeterministicMoves) {
  auto run_once = [] {
    Rig rig(3);
    for (int i = 0; i < 7; ++i) rig.boot(0);
    std::vector<std::size_t> loads;
    rig.rebalancer.rebalance([&](const RebalanceStats&) {});
    rig.sim.run();
    return rig.loads();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace vdc::cluster
