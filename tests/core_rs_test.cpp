// End-to-end tests for the Reed-Solomon parity scheme inside the DVDC
// protocol: multi-holder stripes, incremental RS delta updates, and
// recovery from up-to-m node failures.

#include <gtest/gtest.h>

#include <map>

#include "core/plan.hpp"
#include "core/protocol.hpp"
#include "core/recovery.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

WorkloadFactory idle_factory() {
  return [](vm::VmId) -> std::unique_ptr<vm::Workload> {
    return std::make_unique<vm::IdleWorkload>();
  };
}

struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(2024)};
  DvdcState state;
  std::unique_ptr<DvdcCoordinator> coord;
  std::unique_ptr<RecoveryManager> recovery;
  std::optional<PlacedPlan> placed;

  Rig(std::uint32_t nodes, std::uint32_t vms_per_node, std::size_t rs_m,
      std::uint32_t k, double write_rate = 100.0) {
    for (std::uint32_t n = 0; n < nodes; ++n) cluster.add_node();
    for (std::uint32_t n = 0; n < nodes; ++n)
      for (std::uint32_t v = 0; v < vms_per_node; ++v)
        cluster.boot_vm(n, kib(1), 16,
                        write_rate > 0
                            ? std::unique_ptr<vm::Workload>(
                                  std::make_unique<vm::UniformWorkload>(
                                      write_rate))
                            : std::make_unique<vm::IdleWorkload>());
    ProtocolConfig pc;
    pc.scheme = ParityScheme::Rs;
    pc.rs_parity = rs_m;
    coord = std::make_unique<DvdcCoordinator>(sim, cluster, state, pc);
    recovery =
        std::make_unique<RecoveryManager>(sim, cluster, state, idle_factory());
    PlannerConfig planner;
    planner.group_size = k;
    placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster), cluster,
                              ParityScheme::Rs, rs_m);
  }

  EpochStats checkpoint(checkpoint::Epoch epoch) {
    EpochStats stats;
    bool done = false;
    coord->run_epoch(*placed, epoch, [&](const EpochStats& s) {
      stats = s;
      done = true;
    });
    sim.run();
    EXPECT_TRUE(done);
    return stats;
  }

  std::map<vm::VmId, std::vector<std::byte>> committed_payloads() {
    std::map<vm::VmId, std::vector<std::byte>> out;
    for (vm::VmId vmid : cluster.all_vms()) {
      const auto* cp = state.node_store(*cluster.locate(vmid))
                           .find(vmid, state.committed_epoch());
      if (cp != nullptr) out[vmid] = cp->payload();
    }
    return out;
  }

  RecoveryStats kill_and_recover(std::vector<cluster::NodeId> victims) {
    std::vector<vm::VmId> lost;
    for (auto victim : victims) {
      const auto vms = cluster.node(victim).hypervisor().vm_ids();
      lost.insert(lost.end(), vms.begin(), vms.end());
      cluster.kill_node(victim);
      state.drop_node(victim);
    }
    RecoveryStats stats;
    recovery->recover(*placed, lost,
                      [&](const RecoveryStats& s) { stats = s; });
    sim.run();
    return stats;
  }
};

TEST(RsProtocol, StripeHasMDistinctHolders) {
  Rig rig(7, 1, /*m=*/3, /*k=*/3);
  rig.checkpoint(1);
  for (const auto& group : rig.placed->plan.groups) {
    const auto* record = rig.state.parity(group.id);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->scheme, ParityScheme::Rs);
    ASSERT_EQ(record->blocks.size(), 3u);
    std::set<cluster::NodeId> holders(record->holders.begin(),
                                      record->holders.end());
    EXPECT_EQ(holders.size(), 3u);
  }
}

TEST(RsProtocol, ParityMatchesCodecEncode) {
  Rig rig(6, 2, 2, 3);
  rig.checkpoint(1);
  for (const auto& group : rig.placed->plan.groups) {
    const auto* record = rig.state.parity(group.id);
    ASSERT_NE(record, nullptr);
    auto codec = make_codec(ParityScheme::Rs, group.members.size(), 2);
    std::vector<parity::Block> padded;
    std::vector<parity::BlockView> views;
    for (vm::VmId m : group.members) {
      const auto* cp =
          rig.state.node_store(*rig.cluster.locate(m)).find(m, 1);
      ASSERT_NE(cp, nullptr);
      padded.push_back(cp->padded_payload(record->block_size));
    }
    for (const auto& p : padded) views.emplace_back(p);
    EXPECT_EQ(codec->encode(views), record->blocks);
  }
}

TEST(RsProtocol, IncrementalDeltasKeepParityExact) {
  Rig rig(6, 2, 2, 3, /*write_rate=*/300.0);
  const auto s1 = rig.checkpoint(1);
  EXPECT_TRUE(s1.full_exchange);
  for (checkpoint::Epoch e = 2; e <= 4; ++e) {
    rig.cluster.advance_workloads(1.0);
    const auto stats = rig.checkpoint(e);
    EXPECT_FALSE(stats.full_exchange) << "epoch " << e;
    EXPECT_LT(stats.bytes_shipped, s1.bytes_shipped);
    // Re-verify parity against a fresh encode.
    for (const auto& group : rig.placed->plan.groups) {
      const auto* record = rig.state.parity(group.id);
      auto codec = make_codec(ParityScheme::Rs, group.members.size(), 2);
      std::vector<parity::Block> padded;
      std::vector<parity::BlockView> views;
      for (vm::VmId m : group.members) {
        const auto* cp =
            rig.state.node_store(*rig.cluster.locate(m)).find(m, e);
        ASSERT_NE(cp, nullptr);
        padded.push_back(cp->padded_payload(record->block_size));
      }
      for (const auto& p : padded) views.emplace_back(p);
      ASSERT_EQ(codec->encode(views), record->blocks)
          << "group " << group.id << " epoch " << e;
    }
  }
}

TEST(RsProtocol, DoubleNodeFailureRecovered) {
  Rig rig(6, 1, 2, /*k=*/3);
  rig.checkpoint(1);
  const auto committed = rig.committed_payloads();

  // Two nodes hosting members of the same group.
  const auto& group = rig.placed->plan.groups[0];
  const auto n0 = *rig.cluster.locate(group.members[0]);
  const auto n1 = *rig.cluster.locate(group.members[1]);
  const auto lost0 = rig.cluster.node(n0).hypervisor().vm_ids();
  const auto lost1 = rig.cluster.node(n1).hypervisor().vm_ids();

  const auto stats = rig.kill_and_recover({n0, n1});
  EXPECT_TRUE(stats.success) << stats.reason;
  for (const auto& lost : {lost0, lost1})
    for (vm::VmId vmid : lost) {
      ASSERT_TRUE(rig.cluster.locate(vmid).has_value());
      EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
                committed.at(vmid));
    }
}

TEST(RsProtocol, TripleParitySurvivesThreeFailures) {
  Rig rig(9, 1, /*m=*/3, /*k=*/4);
  rig.checkpoint(1);
  const auto committed = rig.committed_payloads();

  const auto& group = rig.placed->plan.groups[0];
  ASSERT_GE(group.members.size(), 3u);
  std::vector<cluster::NodeId> victims;
  for (int i = 0; i < 3; ++i)
    victims.push_back(*rig.cluster.locate(group.members[i]));

  const auto stats = rig.kill_and_recover(victims);
  EXPECT_TRUE(stats.success) << stats.reason;
  for (int i = 0; i < 3; ++i) {
    const vm::VmId vmid = group.members[i];
    ASSERT_TRUE(rig.cluster.locate(vmid).has_value());
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
              committed.at(vmid));
  }
}

TEST(RsProtocol, BeyondToleranceFailsGracefully) {
  Rig rig(6, 1, /*m=*/1, /*k=*/3);  // RS with m=1 ~ RAID-5 strength
  rig.checkpoint(1);
  const auto& group = rig.placed->plan.groups[0];
  const auto n0 = *rig.cluster.locate(group.members[0]);
  const auto n1 = *rig.cluster.locate(group.members[1]);
  const auto stats = rig.kill_and_recover({n0, n1});
  EXPECT_FALSE(stats.success);
}

TEST(RsProtocol, WireBytesScaleWithM) {
  Rig rig2(8, 1, 2, 3, 0.0);
  Rig rig3(8, 1, 3, 3, 0.0);
  const auto s2 = rig2.checkpoint(1);
  const auto s3 = rig3.checkpoint(1);
  // Full exchange ships each member's image to every holder.
  EXPECT_NEAR(static_cast<double>(s3.bytes_shipped),
              1.5 * static_cast<double>(s2.bytes_shipped),
              static_cast<double>(s2.bytes_shipped) * 0.01);
}

}  // namespace
}  // namespace vdc::core
