// Tests for page-hash deduplicated migration (the paper's Section VII
// future-work feature).

#include <gtest/gtest.h>

#include "migration/pagehash.hpp"
#include "vm/workload.hpp"

namespace vdc::migration {
namespace {

struct Rig {
  simkit::Simulator sim;
  net::Fabric fabric{sim, 0.0};
  net::HostId host_a, host_b;
  vm::Hypervisor hv_a{Rng(1)}, hv_b{Rng(1)};  // same seed: identical boots

  Rig() {
    host_a = fabric.add_host(mib_per_s(100), "a");
    host_b = fabric.add_host(mib_per_s(100), "b");
  }
};

TEST(PageHash, DeterministicAndSensitive) {
  std::vector<std::byte> page(4096, std::byte{0x11});
  const auto h1 = page_hash(page);
  EXPECT_EQ(page_hash(page), h1);
  page[100] = std::byte{0x12};
  EXPECT_NE(page_hash(page), h1);
}

TEST(PageHashIndex, LookupFindsIndexedPages) {
  vm::MemoryImage image(64, 8);
  Rng rng(3);
  image.fill_random(rng);
  PageHashIndex index;
  index.add_image(image);
  EXPECT_LE(index.distinct_pages(), 8u);
  for (vm::PageIndex p = 0; p < 8; ++p) {
    auto view = image.page(p);
    auto found = index.lookup(page_hash(view));
    ASSERT_FALSE(found.empty());
    EXPECT_TRUE(std::equal(view.begin(), view.end(), found.begin()));
  }
  EXPECT_TRUE(index.lookup(0xdeadbeef).empty());
}

TEST(DedupMigrator, IdenticalResidentVmShipsAlmostNothing) {
  Rig rig;
  // Identical Rng seeds for both hypervisors: vm 1 on A and vm 2 on B boot
  // with identical images (a clone pool).
  rig.hv_a.create_vm(1, "a", kib(4), 128, std::make_unique<vm::IdleWorkload>());
  rig.hv_b.create_vm(2, "b", kib(4), 128, std::make_unique<vm::IdleWorkload>());
  ASSERT_EQ(rig.hv_a.get(1).image().flatten(),
            rig.hv_b.get(2).image().flatten());

  DedupMigrator migrator(rig.sim, rig.fabric);
  DedupStats stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const DedupStats& s) { stats = s; });
  rig.sim.run();
  EXPECT_EQ(stats.pages_matched, 128u);
  EXPECT_EQ(stats.hash_collisions, 0u);
  // Only the manifest crosses the wire.
  EXPECT_EQ(stats.bytes_sent, 128u * 8u);
  EXPECT_EQ(stats.bytes_saved, 128u * kib(4));
  EXPECT_TRUE(rig.hv_b.hosts(1));
}

TEST(DedupMigrator, EmptyDestinationShipsEverything) {
  Rig rig;
  rig.hv_a.create_vm(1, "a", kib(4), 64, std::make_unique<vm::IdleWorkload>());
  DedupMigrator migrator(rig.sim, rig.fabric);
  DedupStats stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const DedupStats& s) { stats = s; });
  rig.sim.run();
  EXPECT_EQ(stats.pages_matched, 0u);
  EXPECT_EQ(stats.bytes_sent, 64u * kib(4) + 64u * 8u);
}

TEST(DedupMigrator, DivergedCloneShipsOnlyTheDiff) {
  Rig rig;
  rig.hv_a.create_vm(1, "a", kib(4), 128, std::make_unique<vm::IdleWorkload>());
  rig.hv_b.create_vm(2, "b", kib(4), 128, std::make_unique<vm::IdleWorkload>());
  // Diverge 32 of 128 pages on the source.
  auto& img = rig.hv_a.get(1).image();
  for (vm::PageIndex p = 0; p < 32; ++p) {
    std::vector<std::byte> w(16, std::byte{0x99});
    img.write(p, 0, w);
  }
  DedupMigrator migrator(rig.sim, rig.fabric);
  DedupStats stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const DedupStats& s) { stats = s; });
  rig.sim.run();
  EXPECT_EQ(stats.pages_matched, 96u);
  EXPECT_EQ(stats.bytes_sent, 32u * kib(4) + 128u * 8u);
}

TEST(DedupMigrator, MigratedContentIsExact) {
  Rig rig;
  rig.hv_a.create_vm(1, "a", kib(4), 64, std::make_unique<vm::IdleWorkload>());
  rig.hv_b.create_vm(2, "b", kib(4), 64, std::make_unique<vm::IdleWorkload>());
  auto& img = rig.hv_a.get(1).image();
  std::vector<std::byte> w(8, std::byte{0x42});
  img.write(10, 0, w);
  const auto content = img.flatten();

  DedupMigrator migrator(rig.sim, rig.fabric);
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [](const DedupStats&) {});
  rig.sim.run();
  EXPECT_EQ(rig.hv_b.get(1).image().flatten(), content);
  EXPECT_EQ(rig.hv_b.get(1).state(), vm::VmState::Running);
}

TEST(DedupMigrator, FasterThanPlainTransferForClones) {
  // Timing check: a fully matched image crosses the (slow) wire as a
  // manifest only.
  Rig rig;
  rig.fabric.network().set_capacity(rig.fabric.tx_port(rig.host_a),
                                    mib_per_s(1));
  rig.hv_a.create_vm(1, "a", kib(4), 256, std::make_unique<vm::IdleWorkload>());
  rig.hv_b.create_vm(2, "b", kib(4), 256, std::make_unique<vm::IdleWorkload>());
  DedupMigrator migrator(rig.sim, rig.fabric);
  DedupStats stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const DedupStats& s) { stats = s; });
  rig.sim.run();
  // 1 MiB at 1 MiB/s would be ~1 s; the 2 KiB manifest takes ~2 ms.
  EXPECT_LT(stats.total_time, 0.1);
}

}  // namespace
}  // namespace vdc::migration
