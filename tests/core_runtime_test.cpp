// Tests for the end-to-end job runtime: fault-free accounting, failure
// handling, restarts, determinism, and backend comparisons.

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/runtime.hpp"
#include "model/analytic.hpp"

namespace vdc::core {
namespace {

JobRunner::BackendFactory dvdc_factory(ProtocolConfig protocol = {},
                                       RecoveryConfig recovery = {},
                                       ClusterConfig cc = {}) {
  return [protocol, recovery, cc](simkit::Simulator& sim,
                                  cluster::ClusterManager& cluster,
                                  Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, protocol, recovery,
                                         make_workload_factory(cc));
  };
}

JobRunner::BackendFactory diskfull_factory(DiskFullConfig config = {},
                                           ClusterConfig cc = {}) {
  return [config, cc](simkit::Simulator& sim,
                      cluster::ClusterManager& cluster,
                      Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DiskFullBackend>(sim, cluster,
                                             make_workload_factory(cc),
                                             config);
  };
}

JobRunner::BackendFactory none_factory() {
  return [](simkit::Simulator&, cluster::ClusterManager&,
            Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<NoCheckpointBackend>();
  };
}

ClusterConfig small_cluster() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.pages_per_vm = 32;
  cc.page_size = kib(1);
  cc.write_rate = 100.0;
  return cc;
}

TEST(Runtime, FaultFreeRunCompletesOnTime) {
  JobConfig job;
  job.total_work = minutes(30);
  job.interval = minutes(10);
  job.lambda = 0.0;
  JobRunner runner(job, small_cluster(), dvdc_factory());
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  // Two checkpoints fire (at 10 and 20 minutes of work; the final stretch
  // needs none).
  EXPECT_EQ(result.epochs, 2u);
  EXPECT_EQ(result.failures, 0u);
  // Completion = work + small checkpoint overheads.
  EXPECT_GE(result.completion, job.total_work);
  EXPECT_LT(result.completion, job.total_work + 60.0);
  EXPECT_NEAR(result.time_ratio, 1.0, 0.05);
}

TEST(Runtime, NoCheckpointingRunsStraightThrough) {
  JobConfig job;
  job.total_work = minutes(10);
  job.interval = 0.0;
  JobRunner runner(job, small_cluster(), none_factory());
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.epochs, 0u);
  EXPECT_DOUBLE_EQ(result.completion, job.total_work);
}

TEST(Runtime, FailuresRollBackAndFinish) {
  JobConfig job;
  job.total_work = hours(1);
  job.interval = minutes(5);
  job.lambda = 1.0 / minutes(20);  // several failures expected
  job.seed = 7;
  JobRunner runner(job, small_cluster(), dvdc_factory());
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  EXPECT_GT(result.failures, 0u);
  EXPECT_GT(result.lost_work, 0.0);
  EXPECT_GT(result.total_recovery, 0.0);
  EXPECT_GT(result.completion, job.total_work);
}

TEST(Runtime, DeterministicAcrossRuns) {
  JobConfig job;
  job.total_work = minutes(40);
  job.interval = minutes(5);
  job.lambda = 1.0 / minutes(15);
  job.seed = 11;
  JobRunner a(job, small_cluster(), dvdc_factory());
  JobRunner b(job, small_cluster(), dvdc_factory());
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_TRUE(ra.finished && rb.finished);
  EXPECT_DOUBLE_EQ(ra.completion, rb.completion);
  EXPECT_EQ(ra.failures, rb.failures);
  EXPECT_EQ(ra.epochs, rb.epochs);
  EXPECT_EQ(ra.bytes_shipped, rb.bytes_shipped);
}

TEST(Runtime, SeedChangesOutcome) {
  JobConfig job;
  job.total_work = minutes(40);
  job.interval = minutes(5);
  job.lambda = 1.0 / minutes(15);
  job.seed = 1;
  JobRunner a(job, small_cluster(), dvdc_factory());
  job.seed = 2;
  JobRunner b(job, small_cluster(), dvdc_factory());
  EXPECT_NE(a.run().completion, b.run().completion);
}

TEST(Runtime, NoCheckpointRestartsFromScratch) {
  JobConfig job;
  job.total_work = minutes(10);
  job.interval = 0.0;
  job.lambda = 1.0 / minutes(30);
  job.seed = 3;
  job.restart_time = 5.0;
  JobRunner runner(job, small_cluster(), none_factory());
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  // Every failure forces a restart.
  EXPECT_EQ(result.job_restarts, result.failures);
  if (result.failures > 0) {
    EXPECT_GT(result.lost_work, 0.0);
  }
}

TEST(Runtime, FailureBeforeFirstCheckpointRestarts) {
  JobConfig job;
  job.total_work = minutes(20);
  job.interval = minutes(15);
  job.lambda = 0.0;  // we inject manually via tiny MTBF + seed search:
  // instead, force it: interval longer than first failure.
  job.lambda = 1.0 / minutes(2);
  job.seed = 5;
  JobRunner runner(job, small_cluster(), dvdc_factory());
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  // With MTBF 2 min and the first checkpoint at 15 min of work, at least
  // one failure must have hit before any commit -> restart.
  EXPECT_GT(result.job_restarts, 0u);
}

TEST(Runtime, DvdcOverheadFarBelowDiskFull) {
  JobConfig job;
  job.total_work = minutes(30);
  job.interval = minutes(5);
  job.lambda = 0.0;
  ClusterConfig cc = small_cluster();
  cc.pages_per_vm = 256;  // bigger images so the NAS path matters

  ProtocolConfig dvdc;
  dvdc.copy_on_write = true;
  JobRunner a(job, cc, dvdc_factory(dvdc, {}, cc));
  const RunResult dvdc_result = a.run();

  DiskFullConfig df;
  df.nas.frontend_rate = mib_per_s(50);  // modest NAS
  df.nas.array = storage::DiskSpec{mib_per_s(40), mib_per_s(50),
                                   milliseconds(5)};
  JobRunner b(job, cc, diskfull_factory(df, cc));
  const RunResult df_result = b.run();

  ASSERT_TRUE(dvdc_result.finished && df_result.finished);
  EXPECT_LT(dvdc_result.total_overhead, df_result.total_overhead / 2);
  EXPECT_LT(dvdc_result.completion, df_result.completion);
}

TEST(Runtime, DiskFullRecoversFromFailure) {
  JobConfig job;
  job.total_work = minutes(30);
  job.interval = minutes(5);
  job.lambda = 1.0 / minutes(12);
  job.seed = 13;
  JobRunner runner(job, small_cluster(), diskfull_factory());
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  EXPECT_GT(result.failures, 0u);
}

TEST(Runtime, CheckpointingBeatsNoCheckpointingUnderFailures) {
  JobConfig job;
  job.total_work = hours(1);
  job.interval = minutes(5);
  job.lambda = 1.0 / minutes(10);
  job.seed = 17;
  JobRunner with(job, small_cluster(), dvdc_factory());
  const RunResult rw = with.run();

  JobConfig job2 = job;
  job2.interval = 0.0;
  job2.max_events = 100'000'000;
  JobRunner without(job2, small_cluster(), none_factory());
  const RunResult rwo = without.run();

  ASSERT_TRUE(rw.finished);
  ASSERT_TRUE(rwo.finished);
  EXPECT_LT(rw.completion, rwo.completion);
}

TEST(Runtime, MeasuredRatioTracksAnalyticModel) {
  // Fault-free: the DES ratio should be ~1 + overhead/interval, which is
  // what the analytic model predicts for lambda -> 0.
  JobConfig job;
  job.total_work = hours(1);
  job.interval = minutes(6);
  job.lambda = 0.0;
  ProtocolConfig pc;
  pc.copy_on_write = true;
  pc.base_overhead = 0.5;  // exaggerate so the effect is visible
  JobRunner runner(job, small_cluster(), dvdc_factory(pc));
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  const double predicted = 1.0 + pc.base_overhead / job.interval;
  EXPECT_NEAR(result.time_ratio, predicted, 0.01);
}

TEST(Runtime, RdpSchemeEndToEnd) {
  JobConfig job;
  job.total_work = minutes(20);
  job.interval = minutes(5);
  job.lambda = 1.0 / minutes(8);
  job.seed = 19;
  ClusterConfig cc = small_cluster();
  cc.nodes = 6;
  cc.vms_per_node = 2;
  ProtocolConfig pc;
  pc.scheme = ParityScheme::Rdp;
  PlannerConfig planner;
  planner.group_size = 3;
  auto factory = [pc, planner, cc](simkit::Simulator& sim,
                                   cluster::ClusterManager& cluster, Rng&)
      -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, pc, RecoveryConfig{},
                                         make_workload_factory(cc), planner);
  };
  JobRunner runner(job, cc, factory);
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  EXPECT_GT(result.epochs, 0u);
}

TEST(Runtime, PausedInjectionDoesNotDoubleCount) {
  JobConfig job;
  job.total_work = minutes(20);
  job.interval = minutes(2);
  job.lambda = 1.0 / minutes(4);
  job.seed = 23;
  JobRunner runner(job, small_cluster(), dvdc_factory());
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  // failures + ignored = injector total; ignored only during recovery.
  EXPECT_GE(result.failures, 1u);
}

}  // namespace
}  // namespace vdc::core
