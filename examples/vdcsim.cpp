// vdcsim — parameterized command-line driver for the DVDC simulator.
//
// The tool a downstream user reaches for first: describe a cluster and a
// job, pick a checkpoint scheme, and get the completion-time breakdown.
//
//   $ ./vdcsim --nodes 8 --vms 2 --pages 256 --mtbf-min 45 --scheme rs
//   $ ./vdcsim --interval-s 120 --rs-m 2 --seed 7
//   $ ./vdcsim --scheme diskfull --work-h 4
//   $ ./vdcsim --scheme none --mtbf-min 90
//   $ ./vdcsim --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/baseline.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

struct Options {
  std::uint32_t nodes = 4;
  std::uint32_t vms = 3;
  std::size_t pages = 128;       // 4 KiB pages per VM
  double work_h = 2.0;
  double interval_s = 300.0;
  double mtbf_min = 60.0;        // 0 = no failures
  std::string scheme = "dvdc";   // dvdc | rdp | rs | diskfull | none
  std::size_t rs_m = 2;
  std::uint64_t seed = 42;
  bool adaptive = false;
  bool sync = false;             // synchronous (non-COW) capture
  bool heartbeat = false;        // wire-true failure detection
  double drop = 0.0;             // ambient per-frame drop probability
  double corrupt = 0.0;          // ambient per-frame corruption probability
};

void usage() {
  std::puts(
      "vdcsim — distributed virtual diskless checkpointing simulator\n"
      "  --nodes N        physical nodes (default 4)\n"
      "  --vms N          VMs per node (default 3)\n"
      "  --pages N        4 KiB pages per VM image (default 128)\n"
      "  --work-h H       job length in fault-free hours (default 2)\n"
      "  --interval-s S   checkpoint interval in seconds (default 300)\n"
      "  --mtbf-min M     cluster MTBF in minutes, 0 = no failures "
      "(default 60)\n"
      "  --scheme S       dvdc | rdp | rs | diskfull | none (default dvdc)\n"
      "  --rs-m M         Reed-Solomon parity blocks (default 2)\n"
      "  --adaptive       adaptive (online Young) checkpoint interval\n"
      "  --sync           synchronous capture (no copy-on-write overlap)\n"
      "  --heartbeat      wire-true failure detection (measured latency,\n"
      "                   heartbeats cross the fabric's fault plane)\n"
      "  --drop P         ambient per-frame drop probability on every NIC\n"
      "  --corrupt P      ambient per-frame corruption probability\n"
      "  --seed N         RNG seed (default 42)");
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return false;
    } else if (arg == "--adaptive") {
      opt.adaptive = true;
    } else if (arg == "--heartbeat") {
      opt.heartbeat = true;
    } else if (arg == "--sync") {
      opt.sync = true;
    } else {
      const char* value = need_value();
      if (value == nullptr) return false;
      if (arg == "--nodes")
        opt.nodes = static_cast<std::uint32_t>(std::atoi(value));
      else if (arg == "--vms")
        opt.vms = static_cast<std::uint32_t>(std::atoi(value));
      else if (arg == "--pages")
        opt.pages = static_cast<std::size_t>(std::atol(value));
      else if (arg == "--work-h")
        opt.work_h = std::atof(value);
      else if (arg == "--interval-s")
        opt.interval_s = std::atof(value);
      else if (arg == "--mtbf-min")
        opt.mtbf_min = std::atof(value);
      else if (arg == "--scheme")
        opt.scheme = value;
      else if (arg == "--rs-m")
        opt.rs_m = static_cast<std::size_t>(std::atol(value));
      else if (arg == "--seed")
        opt.seed = static_cast<std::uint64_t>(std::atoll(value));
      else if (arg == "--drop")
        opt.drop = std::atof(value);
      else if (arg == "--corrupt")
        opt.corrupt = std::atof(value);
      else {
        std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
        return false;
      }
    }
  }
  return true;
}

JobRunner::BackendFactory make_backend(const Options& opt,
                                       const ClusterConfig& cc) {
  if (opt.scheme == "diskfull") {
    return [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
                Rng&) -> std::unique_ptr<CheckpointBackend> {
      return std::make_unique<DiskFullBackend>(sim, cluster,
                                               make_workload_factory(cc),
                                               DiskFullConfig{});
    };
  }
  if (opt.scheme == "none") {
    return [](simkit::Simulator&, cluster::ClusterManager&,
              Rng&) -> std::unique_ptr<CheckpointBackend> {
      return std::make_unique<NoCheckpointBackend>();
    };
  }
  ProtocolConfig pc;
  pc.copy_on_write = !opt.sync;
  pc.rs_parity = opt.rs_m;
  if (opt.scheme == "rdp")
    pc.scheme = ParityScheme::Rdp;
  else if (opt.scheme == "rs")
    pc.scheme = ParityScheme::Rs;
  else
    pc.scheme = ParityScheme::Raid5;
  return [cc, pc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
                  Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, pc, RecoveryConfig{},
                                         make_workload_factory(cc));
  };
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return argc > 1 ? 1 : 0;
  if (opt.scheme != "dvdc" && opt.scheme != "rdp" && opt.scheme != "rs" &&
      opt.scheme != "diskfull" && opt.scheme != "none") {
    std::fprintf(stderr, "unknown scheme '%s' (try --help)\n",
                 opt.scheme.c_str());
    return 1;
  }

  ClusterConfig cc;
  cc.nodes = opt.nodes;
  cc.vms_per_node = opt.vms;
  cc.page_size = kib(4);
  cc.pages_per_vm = opt.pages;
  cc.write_rate = 200.0;

  JobConfig job;
  job.total_work = hours(opt.work_h);
  job.interval = opt.scheme == "none" ? 0.0 : opt.interval_s;
  job.lambda = opt.mtbf_min > 0 ? 1.0 / minutes(opt.mtbf_min) : 0.0;
  job.seed = opt.seed;
  if (opt.heartbeat) job.heartbeat = cluster::HeartbeatConfig{};
  if (opt.drop > 0.0 || opt.corrupt > 0.0) {
    if (opt.drop < 0.0 || opt.drop > 1.0 || opt.corrupt < 0.0 ||
        opt.corrupt > 1.0) {
      std::fprintf(stderr, "--drop/--corrupt must be in [0,1]\n");
      return 1;
    }
    net::LinkFault ambient;
    ambient.drop = opt.drop;
    ambient.corrupt = opt.corrupt;
    job.ambient_link_fault = ambient;
  }
  if (opt.adaptive && opt.scheme != "none") {
    AdaptiveConfig ac;
    ac.lambda = job.lambda > 0 ? job.lambda : 1e-4;
    ac.initial = opt.interval_s;
    job.interval_policy = std::make_shared<AdaptiveIntervalPolicy>(ac);
  }

  char mtbf_label[32];
  if (opt.mtbf_min > 0)
    std::snprintf(mtbf_label, sizeof mtbf_label, "%.0f min", opt.mtbf_min);
  else
    std::snprintf(mtbf_label, sizeof mtbf_label, "inf");
  std::printf("vdcsim: %u nodes x %u VMs x %.1f MiB, job %.1f h, MTBF %s, "
              "scheme %s%s\n\n",
              opt.nodes, opt.vms, opt.pages * 4.0 / 1024.0, opt.work_h,
              mtbf_label, opt.scheme.c_str(),
              opt.adaptive ? " (adaptive)" : "");

  JobRunner runner(job, cc, make_backend(opt, cc));
  const RunResult r = runner.run();
  if (!r.finished) {
    std::puts("did not finish within the event budget");
    return 2;
  }
  std::printf("completion      : %.3f h (ratio %.4f)\n", r.completion / 3600,
              r.time_ratio);
  std::printf("checkpoints     : %u epochs, %.2f s total overhead, %.1f MiB "
              "shipped\n",
              r.epochs, r.total_overhead,
              r.bytes_shipped / (1024.0 * 1024.0));
  std::printf("failures        : %u (%u during recovery, %u cascaded "
              "rounds), %u restarts\n",
              r.failures, r.failures_during_recovery, r.recovery_cascades,
              r.job_restarts);
  std::printf("lost work       : %.1f min\n", r.lost_work / 60.0);
  std::printf("recovery time   : %.1f s\n", r.total_recovery);
  const auto& metrics = runner.sim().telemetry().metrics();
  if (opt.drop > 0.0 || opt.corrupt > 0.0) {
    std::printf("fabric          : %.0f drops, %.0f retransmits, %.0f "
                "corrupt frames caught\n",
                metrics.value("net.drops"), metrics.value("net.retransmits"),
                metrics.value("net.corrupt_frames"));
  }
  if (opt.heartbeat) {
    std::printf("detection       : %.0f suspected, %.0f false positives, "
                "%.0f fenced writes\n",
                metrics.value("hb.suspected"),
                metrics.value("hb.false_positives"),
                metrics.value("recovery.fenced"));
  }
  return 0;
}
