// Migration study: the live-migration machinery DVDC builds on
// (Section II-A / IV-C), on its own.
//
//   1. Pre-copy live migration under increasing guest write rates —
//      downtime stays in milliseconds until the dirty rate outruns the
//      link (Clark et al.'s writable-working-set story).
//   2. A Remus-style replicator protecting a VM at 40 checkpoints/sec,
//      then a failover: how much speculation is lost.
//
//   $ ./migration_study

#include <cstdio>

#include "migration/precopy.hpp"
#include "migration/remus.hpp"

using namespace vdc;
using namespace vdc::migration;

int main() {
  std::printf("--- pre-copy live migration, 16 MiB guest, 100 MiB/s link\n");
  std::printf("%12s %8s %12s %12s %12s %6s\n", "writes/s", "rounds",
              "downtime", "total", "sent", "conv");
  for (double rate : {0.0, 100.0, 1000.0, 5000.0, 20000.0}) {
    simkit::Simulator sim;
    net::Fabric fabric(sim, 50e-6);
    const auto src_host = fabric.add_host(mib_per_s(100), "src");
    const auto dst_host = fabric.add_host(mib_per_s(100), "dst");
    vm::Hypervisor src(Rng(1)), dst(Rng(2));
    std::unique_ptr<vm::Workload> w;
    if (rate <= 0)
      w = std::make_unique<vm::IdleWorkload>();
    else
      w = std::make_unique<vm::UniformWorkload>(rate);
    src.create_vm(1, "guest", kib(4), 4096, std::move(w));  // 16 MiB

    PreCopyMigrator migrator(sim, fabric);
    MigrationStats stats;
    migrator.migrate(1, src, src_host, dst, dst_host,
                     [&](const MigrationStats& s) { stats = s; });
    sim.run();
    std::printf("%12.0f %8u %10.1fms %10.2fs %10.1fMB %6s\n", rate,
                stats.rounds, stats.downtime * 1e3, stats.total_time,
                stats.bytes_sent / 1e6, stats.converged ? "yes" : "no");
  }

  std::printf("\n--- Remus-style replication, 40 epochs/s, failover after "
              "10 s\n");
  simkit::Simulator sim;
  net::Fabric fabric(sim, 50e-6);
  const auto primary_host = fabric.add_host(mib_per_s(100), "primary");
  const auto backup_host = fabric.add_host(mib_per_s(100), "backup");
  vm::Hypervisor primary(Rng(3));
  primary.create_vm(1, "protected", kib(4), 1024,
                    std::make_unique<vm::HotColdWorkload>(2000.0, 0.1, 0.9));

  RemusConfig config;
  config.epoch_interval = 0.025;
  RemusReplicator remus(sim, fabric, primary, primary_host, backup_host, 1,
                        config);
  remus.start();
  sim.run_until(10.0);
  const auto& stats = remus.stats();
  std::printf("epochs committed : %llu (%.1f/s)\n",
              static_cast<unsigned long long>(stats.epochs_committed),
              stats.epochs_committed / 10.0);
  std::printf("guest pause time : %.1f ms total (%.2f%% of wall time)\n",
              stats.total_pause_time * 1e3, stats.total_pause_time * 10.0);
  std::printf("bytes shipped    : %.1f MB (XOR+RLE compressed deltas)\n",
              stats.bytes_shipped / 1e6);

  const auto failover = remus.failover();
  std::printf("failover         : lost %.1f ms of speculative execution; "
              "backup image %.1f MiB ready immediately\n",
              failover.lost_work * 1e3,
              failover.image.size() / (1024.0 * 1024.0));
  std::printf("\nDVDC uses this same machinery (incremental capture, "
              "compressed deltas) but replaces the per-VM standby with "
              "distributed parity.\n");
  return 0;
}
