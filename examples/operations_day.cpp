// A day in the life of a DVDC cluster — the operational pieces working
// together on one timeline:
//
//   t=0        boot 4x3 cluster, plan RAID groups, first checkpoint
//   t=60 s     scrub detects + repairs an injected parity bit-flip
//   t=120 s    node 1 dies; reconstruction + global rollback
//   afterwards the survivors are overloaded: the rebalancer live-migrates
//   guests back onto the repaired node, and a final checkpoint epoch
//   re-establishes full protection under a fresh plan.
//
//   $ ./operations_day

#include <cstdio>

#include "cluster/rebalance.hpp"
#include "core/recovery.hpp"
#include "core/runtime.hpp"
#include "core/scrub.hpp"

using namespace vdc;
using namespace vdc::core;

int main() {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(777));
  ClusterConfig cc;
  cc.page_size = kib(4);
  cc.pages_per_vm = 128;
  cc.write_rate = 300.0;
  auto workloads = make_workload_factory(cc);
  for (int n = 0; n < 4; ++n) cluster.add_node();
  for (int n = 0; n < 4; ++n)
    for (int v = 0; v < 3; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

  DvdcState state;
  DvdcCoordinator coordinator(sim, cluster, state);
  RecoveryManager recovery(sim, cluster, state, workloads);
  ParityScrubber scrubber(sim, cluster, state);
  cluster::MigrationService migrations(sim, cluster);
  cluster::Rebalancer rebalancer(sim, cluster, migrations);

  auto placed = PlacedPlan::make(GroupPlanner().plan(cluster), cluster);
  const auto loads = [&] {
    std::string out;
    for (cluster::NodeId n : cluster.alive_nodes())
      out += std::to_string(cluster.node(n).hypervisor().vm_count()) + " ";
    return out;
  };

  // t=0: first checkpoint.
  coordinator.run_epoch(placed, 1, [&](const EpochStats& s) {
    std::printf("[%7.2fs] epoch 1 committed (overhead %.0f ms, %zu groups, "
                "%.1f MiB in memory)\n",
                sim.now(), s.overhead * 1e3, s.groups,
                state.memory_bytes() / (1024.0 * 1024.0));
  });
  sim.run();

  // t=60: silent corruption strikes a parity block; the scrubber catches
  // it before it can poison a future recovery.
  sim.run_until(60.0);
  cluster.advance_workloads(60.0);
  scrubber.inject_corruption(2, 0, 1234);
  std::printf("[%7.2fs] injected a bit flip into group 2's parity\n",
              sim.now());
  scrubber.scrub(placed, /*repair=*/true, [&](const ScrubReport& r) {
    std::printf("[%7.2fs] scrub: %zu groups checked, %zu mismatch, %zu "
                "repaired (%.1f MiB verified in %.2f s)\n",
                sim.now(), r.groups_checked, r.mismatched.size(),
                r.repaired, r.bytes_verified / (1024.0 * 1024.0),
                r.duration);
  });
  sim.run();

  // t=120: node 1 dies.
  sim.run_until(120.0);
  cluster.advance_workloads(60.0);
  const auto lost = cluster.node(1).hypervisor().vm_ids();
  cluster.kill_node(1);
  state.drop_node(1);
  std::printf("[%7.2fs] node 1 FAILED, lost %zu VMs; loads now: %s\n",
              sim.now(), lost.size(), loads().c_str());
  recovery.recover(placed, lost, [&](const RecoveryStats& r) {
    std::printf("[%7.2fs] recovery %s: %zu VMs rebuilt, %.1f MiB moved, "
                "%.2f s; loads: %s\n",
                sim.now(), r.success ? "OK" : "FAILED", r.vms_recovered,
                r.bytes_transferred / (1024.0 * 1024.0), r.duration,
                loads().c_str());
  });
  sim.run();

  // The node is repaired and rejoins empty; rebalance the guests back.
  cluster.revive_node(1);
  std::printf("[%7.2fs] node 1 repaired and back (empty); loads: %s\n",
              sim.now(), loads().c_str());
  rebalancer.rebalance([&](const cluster::RebalanceStats& r) {
    std::printf("[%7.2fs] rebalanced: %zu live migrations, %.1f MiB moved, "
                "max load %zu -> %zu; loads: %s\n",
                sim.now(), r.migrations, r.bytes_moved / (1024.0 * 1024.0),
                r.max_load_before, r.max_load_after, loads().c_str());
  });
  sim.run();

  // Placement changed: re-plan and take a fresh epoch to restore full
  // protection under the new layout.
  placed = PlacedPlan::make(GroupPlanner().plan(cluster), cluster);
  coordinator.run_epoch(
      placed, state.committed_epoch() + 1, [&](const EpochStats& s) {
        std::printf("[%7.2fs] epoch %llu committed under the new plan "
                    "(full exchange: %s)\n",
                    sim.now(), static_cast<unsigned long long>(s.epoch),
                    s.full_exchange ? "yes" : "no");
      });
  sim.run();

  std::printf("\nAll four mechanisms — checkpoint, scrub, recover, "
              "rebalance — on one timeline.\n");
  return 0;
}
