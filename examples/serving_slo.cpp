// Serving SLO demo: what checkpoint-interval tuning feels like from a
// client's seat. Boots a small cluster, points a million simulated
// clients (aggregated into a handful of open-loop streams) at the
// guests, kills a node mid-run, and prints the served-latency
// distribution, the egress held by output commit, and the downtime the
// clients actually saw — once with a snappy 1 s interval, once with a
// lazy 8 s one.
//
//   $ ./serving_slo

#include <cstdio>

#include "core/runtime.hpp"

using namespace vdc;

int main() {
  for (const SimTime interval : {1.0, 8.0}) {
    core::ClusterConfig cc;
    cc.nodes = 4;
    cc.vms_per_node = 2;
    cc.page_size = kib(1);
    cc.pages_per_vm = 16;
    cc.write_rate = 150.0;

    workload::TrafficConfig tc;
    tc.mode = workload::TrafficConfig::Mode::kOpen;
    tc.clients_per_guest = 125'000;  // 8 guests -> one million clients
    tc.request_rate = 0.001;         // each mostly idle: 125 req/s a guest
    tc.client_timeout = 2.0;
    tc.response_bytes = kib(2);
    tc.warmup = 2.0;

    core::JobConfig job;
    job.total_work = 60.0;
    job.interval = interval;
    job.seed = 7;
    failure::ScheduledFailure kill;
    kill.at = 32.0;
    kill.node = 1;
    job.failure_schedule = {kill};
    job.traffic = tc;

    core::JobRunner runner(job, cc, [cc](simkit::Simulator& sim,
                                         cluster::ClusterManager& cluster,
                                         Rng&) {
      return std::unique_ptr<core::CheckpointBackend>(
          std::make_unique<core::DvdcBackend>(
              sim, cluster, core::ProtocolConfig{}, core::RecoveryConfig{},
              core::make_workload_factory(cc)));
    });
    const core::RunResult r = runner.run();
    const auto s = runner.traffic()->summary();

    std::printf("--- checkpoint interval %.0f s ---\n", interval);
    std::printf("job:     finished=%s  completion %.1f s  (%.3fx fault-free)"
                "  %u epochs, %u failure\n",
                r.finished ? "yes" : "no", r.completion, r.time_ratio,
                r.epochs, r.failures);
    std::printf("clients: %llu delivered at %.0f req/s  "
                "(%llu timeouts, %llu retries)\n",
                static_cast<unsigned long long>(s.delivered), s.throughput,
                static_cast<unsigned long long>(s.timeouts),
                static_cast<unsigned long long>(s.retries));
    std::printf("latency: p50 %.0f ms  p99 %.0f ms  p999 %.0f ms\n",
                s.latency_p50 * 1e3, s.latency_p99 * 1e3,
                s.latency_p999 * 1e3);
    std::printf("output commit: peak %.0f KiB held, %llu responses dropped "
                "by the failover rollback\n",
                static_cast<double>(s.held_bytes_peak) / 1024.0,
                static_cast<unsigned long long>(s.dropped_failover));
    std::printf("visible downtime: %.2f s\n\n", s.downtime_visible);
  }
  std::printf("shorter intervals commit (and release) egress sooner: lower\n"
              "p99 and less rolled-back output when the node died — paid\n"
              "for in checkpoint overhead (the Fig. 5 tradeoff, restated\n"
              "as an SLO; see bench/serving_sweep for the full curve).\n");
  return 0;
}
