// Failover campaign: a 4-hour HPC job on an unreliable cluster, executed
// three ways — DVDC diskless checkpointing, traditional disk-full
// checkpointing to a NAS, and no checkpointing at all — with identical
// failure seeds. This is the workload the paper's introduction motivates:
// long-running parallel jobs on machines whose MTBF is a few hours.
//
//   $ ./failover_campaign

#include <cstdio>

#include "core/baseline.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

int main() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.page_size = kib(4);
  cc.pages_per_vm = 512;  // 2 MiB guests (simulation-sized)
  cc.write_rate = 200.0;

  JobConfig job;
  job.total_work = hours(4);
  job.interval = minutes(10);
  job.lambda = 1.0 / hours(1);  // hostile: MTBF one hour
  job.seed = 2012;              // same failures for every scheme

  struct Entry {
    const char* name;
    JobRunner::BackendFactory factory;
    double interval;
  };
  DiskFullConfig df;
  df.nas.frontend_rate = mib_per_s(10);
  df.nas.array =
      storage::DiskSpec{mib_per_s(8), mib_per_s(10), milliseconds(5)};

  const Entry entries[] = {
      {"DVDC (diskless, COW)",
       [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
            Rng&) -> std::unique_ptr<CheckpointBackend> {
         return std::make_unique<DvdcBackend>(sim, cluster, ProtocolConfig{},
                                              RecoveryConfig{},
                                              make_workload_factory(cc));
       },
       minutes(2)},  // cheap checkpoints: take them often
      {"disk-full (NAS, sync)",
       [cc, df](simkit::Simulator& sim, cluster::ClusterManager& cluster,
                Rng&) -> std::unique_ptr<CheckpointBackend> {
         return std::make_unique<DiskFullBackend>(
             sim, cluster, make_workload_factory(cc), df);
       },
       minutes(10)},  // expensive checkpoints: space them out
      {"no checkpointing",
       [](simkit::Simulator&, cluster::ClusterManager&,
          Rng&) -> std::unique_ptr<CheckpointBackend> {
         return std::make_unique<NoCheckpointBackend>();
       },
       0.0},
  };

  std::printf("4-hour job, 12 VMs on 4 nodes, cluster MTBF 1 h.\n"
              "Each scheme checkpoints near its own optimum: DVDC every "
              "2 min, disk-full every 10 min.\n\n");
  std::printf("%-24s %10s %7s %7s %9s %10s %9s\n", "scheme", "completion",
              "ratio", "fails", "restarts", "lost work", "overhead");
  for (const auto& entry : entries) {
    JobConfig j = job;
    j.interval = entry.interval;
    JobRunner runner(j, cc, entry.factory);
    const RunResult r = runner.run();
    if (!r.finished) {
      std::printf("%-24s did not finish within the event budget\n",
                  entry.name);
      continue;
    }
    std::printf("%-24s %9.2fh %7.3f %7u %9u %8.1fm %8.1fs\n", entry.name,
                r.completion / 3600.0, r.time_ratio, r.failures,
                r.job_restarts, r.lost_work / 60.0, r.total_overhead);
  }

  std::printf("\nSame failure trace everywhere: diskless checkpointing "
              "turns hours of rework into seconds of overhead; skipping "
              "checkpoints entirely makes completion a lottery.\n");
  return 0;
}
