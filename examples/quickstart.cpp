// Quickstart: the DVDC public API in ~80 lines.
//
// Builds the paper's Figure 4 cluster (4 physical nodes, 3 VMs each),
// takes one distributed diskless checkpoint, kills a node, and recovers
// the lost VMs byte-exactly from their RAID groups' parity.
//
//   $ ./quickstart

#include <cstdio>

#include "common/log.hpp"
#include "core/recovery.hpp"
#include "core/runtime.hpp"

using namespace vdc;

int main() {
  Logger::instance().set_level(LogLevel::Info);

  // 1. A simulated cluster: 4 nodes, 10 Gbit NICs, one hypervisor each.
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(/*seed=*/42));
  for (int n = 0; n < 4; ++n) cluster.add_node();

  // 2. Boot 3 guests per node. Each runs a hot/cold write workload over a
  //    page-granular memory image (real bytes: parity is computed on them).
  core::ClusterConfig guest;
  guest.page_size = kib(4);
  guest.pages_per_vm = 256;  // 1 MiB per VM
  guest.write_rate = 500.0;
  auto workloads = core::make_workload_factory(guest);
  for (int n = 0; n < 4; ++n)
    for (int v = 0; v < 3; ++v)
      cluster.boot_vm(n, guest.page_size, guest.pages_per_vm, workloads(0));

  // 3. Plan orthogonal RAID groups (no two members on one node) and pin a
  //    parity holder per group, rotated across the cluster.
  core::DvdcState state;
  core::DvdcCoordinator coordinator(sim, cluster, state);
  auto plan = core::PlacedPlan::make(core::GroupPlanner().plan(cluster),
                                     cluster, core::ParityScheme::Raid5);
  std::printf("planned %zu RAID groups over %zu VMs\n",
              plan.plan.groups.size(), cluster.all_vms().size());

  // 4. Take a coordinated diskless checkpoint (epoch 1).
  coordinator.run_epoch(plan, 1, [&](const core::EpochStats& stats) {
    std::printf("epoch %llu committed: overhead %.1f ms, latency %.1f ms, "
                "%.1f KiB shipped\n",
                static_cast<unsigned long long>(stats.epoch),
                stats.overhead * 1e3, stats.latency * 1e3,
                stats.bytes_shipped / 1024.0);
  });
  sim.run();

  // 5. Let the guests compute (and dirty memory) for a while.
  cluster.advance_workloads(seconds(30));

  // 6. Disaster: node 2 dies, taking its 3 VMs and their memory with it.
  const auto lost = cluster.node(2).hypervisor().vm_ids();
  cluster.kill_node(2);
  state.drop_node(2);
  std::printf("node 2 failed, lost %zu VMs\n", lost.size());

  // 7. Recover: surviving group members + parity holders stream their
  //    blocks to replacement nodes, XOR rebuilds the lost images, and the
  //    whole cluster rolls back to the committed cut and resumes.
  core::RecoveryManager recovery(sim, cluster, state, workloads);
  recovery.recover(plan, lost, [&](const core::RecoveryStats& stats) {
    std::printf("recovery %s: %zu VMs rebuilt in %.2f s (%.1f MiB moved)\n",
                stats.success ? "succeeded" : "FAILED",
                stats.vms_recovered, stats.duration,
                stats.bytes_transferred / (1024.0 * 1024.0));
  });
  sim.run();

  // 8. The recovered VMs are byte-identical to their checkpoints.
  for (vm::VmId id : lost) {
    const auto node = cluster.locate(id);
    std::printf("  vm%u now on node %u (%s)\n", id, *node,
                cluster::NameService::address(id).c_str());
  }
  return 0;
}
