// Interval tuning: use the Section V analytical model as an advisor —
// describe your cluster, get the optimal checkpoint interval and the
// expected cost of deviating from it — then verify the advice by actually
// running the job at several intervals on the discrete-event cluster.
//
//   $ ./interval_tuning

#include <cstdio>

#include "core/runtime.hpp"
#include "model/analytic.hpp"
#include "model/overhead.hpp"

using namespace vdc;

int main() {
  // Describe the deployment (the paper's Figure 4/5 scenario, scaled to
  // simulation-sized guests for the verification runs).
  model::ClusterShape shape{4, 3, gib(4)};
  model::HardwareProfile hw;
  const double mtbf = hours(3);
  const double lambda = 1.0 / mtbf;
  const double job_length = days(2);

  const auto costs = model::diskless_costs(shape, hw, /*overlap=*/true);
  const auto opt =
      model::optimal_interval(lambda, job_length, costs.overhead,
                              costs.repair);

  std::printf("cluster: %u nodes x %u VMs (%.0f GiB images), MTBF %.1f h\n",
              shape.nodes, shape.vms_per_node,
              shape.vm_image / (1024.0 * 1024.0 * 1024.0), mtbf / 3600.0);
  std::printf("DVDC checkpoint: overhead %.0f ms, latency %.1f s, repair "
              "%.1f s\n\n",
              costs.overhead * 1e3, costs.latency, costs.repair);
  std::printf("advised interval: %.1f s  (Young's approximation: %.1f s)\n",
              opt.interval, model::young_interval(lambda, costs.overhead));
  std::printf("expected completion: %.4f x fault-free\n\n", opt.ratio);

  std::printf("cost of deviating (model):\n");
  std::printf("%14s %10s\n", "interval", "E[T]/T");
  for (double factor : {0.1, 0.5, 1.0, 2.0, 10.0, 100.0}) {
    const double interval = opt.interval * factor;
    std::printf("%11.0f s  %10.4f%s\n", interval,
                model::expected_time_ratio(lambda, job_length, interval,
                                           costs.overhead, costs.repair),
                factor == 1.0 ? "   <- advised" : "");
  }

  // Verify on the DES (shorter job + small guests so this runs in
  // seconds; the ordering is what matters).
  std::printf("\nverification on the simulated cluster (2 h job, "
              "MTBF 30 min):\n");
  core::ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.page_size = kib(4);
  cc.pages_per_vm = 64;
  cc.write_rate = 100.0;
  std::printf("%14s %10s %8s\n", "interval", "ratio", "fails");
  for (double interval : {minutes(1), minutes(5), minutes(20), hours(1)}) {
    core::JobConfig job;
    job.total_work = hours(2);
    job.interval = interval;
    job.lambda = 1.0 / minutes(30);
    job.seed = 99;
    core::JobRunner runner(
        job, cc,
        [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
             Rng&) -> std::unique_ptr<core::CheckpointBackend> {
          return std::make_unique<core::DvdcBackend>(
              sim, cluster, core::ProtocolConfig{}, core::RecoveryConfig{},
              core::make_workload_factory(cc));
        });
    const auto result = runner.run();
    std::printf("%11.0f s  %10.4f %8u%s\n", interval,
                result.finished ? result.time_ratio : 0.0, result.failures,
                result.finished ? "" : "  (did not finish)");
  }
  std::printf("\nToo-frequent checkpoints pay overhead; too-rare ones pay "
              "rollback — the minimum sits where the model says.\n");
  return 0;
}
