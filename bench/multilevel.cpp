// ABL-ML — putting numbers on "how safe is diskless?" and the multilevel
// answer.
//
// Part 1: mean time to data loss (MTTDL) of a checkpoint stripe as a
// function of the parity degree — the classic RAID reliability calculus
// applied to the paper's VM-image stripes (closed-form birth-death chain,
// cross-checked by Monte-Carlo in the tests).
//
// Part 2: the two-level backend (DVDC + periodic async NAS flush) under a
// failure process hot enough to produce occasional double failures. A
// plain RAID-5 DVDC restarts the job from scratch on every catastrophic
// loss; the multilevel variant falls back to the last durable NAS level,
// paying only the flush lag.

#include <cstdio>

#include "bench_util.hpp"
#include "core/twolevel.hpp"
#include "model/reliability.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

ClusterConfig shape() {
  ClusterConfig cc;
  cc.nodes = 5;
  cc.vms_per_node = 2;
  cc.page_size = kib(4);
  cc.pages_per_vm = 64;
  cc.write_rate = 200.0;
  return cc;
}

struct CatastropheOutcome {
  bool survived = false;       // avoided restarting from scratch
  std::uint32_t rolled_back = 0;  // committed epochs lost to the fallback
  SimTime recovery_time = 0.0;
};

/// Scripted correlated catastrophe: commit 10 DVDC epochs (flushing per
/// the backend's cadence), then two nodes die AT ONCE — beyond RAID-5.
CatastropheOutcome scripted_catastrophe(std::uint32_t flush_every) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(404));
  const ClusterConfig cc = shape();
  auto workloads = make_workload_factory(cc);
  for (std::uint32_t n = 0; n < cc.nodes; ++n) cluster.add_node();
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    for (std::uint32_t v = 0; v < cc.vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

  PlannerConfig planner;
  planner.group_size = 4;
  std::unique_ptr<CheckpointBackend> backend;
  if (flush_every == 0) {
    backend = std::make_unique<DvdcBackend>(sim, cluster, ProtocolConfig{},
                                            RecoveryConfig{}, workloads,
                                            planner);
  } else {
    TwoLevelConfig tl;
    tl.flush_every = flush_every;
    backend = std::make_unique<TwoLevelBackend>(
        sim, cluster, ProtocolConfig{}, RecoveryConfig{}, workloads, tl,
        planner);
  }

  for (checkpoint::Epoch e = 1; e <= 10; ++e) {
    cluster.advance_workloads(30.0);
    for (cluster::NodeId nid : cluster.alive_nodes())
      cluster.node(nid).hypervisor().pause_all();
    backend->checkpoint(e, [](const EpochStats&) {});
    sim.run();
  }

  std::vector<vm::VmId> lost = cluster.node(0).hypervisor().vm_ids();
  const auto lost1 = cluster.node(1).hypervisor().vm_ids();
  lost.insert(lost.end(), lost1.begin(), lost1.end());
  cluster.kill_node(0);
  backend->on_node_failure(0);
  cluster.kill_node(1);
  backend->on_node_failure(1);
  cluster.revive_node(0);
  cluster.revive_node(1);

  CatastropheOutcome outcome;
  const SimTime start = sim.now();
  backend->handle_failure(lost, [&](const RecoveryStats& rs) {
    outcome.survived = rs.success;
    outcome.rolled_back = rs.epochs_rolled_back;
    outcome.recovery_time = sim.now() - start;
  });
  sim.run();
  return outcome;
}

}  // namespace

int main() {
  bench::banner("ABL-ML  reliability calculus + multilevel checkpointing",
                "stripe MTTDL by parity degree; then DVDC vs DVDC+NAS "
                "under a hostile failure process");

  std::printf("stripe MTTDL (5-node stripe, node MTBF 1000 h, stripe "
              "re-protected in 60 s):\n");
  std::printf("%18s %16s %18s\n", "code", "stripe MTTDL",
              "4-group cluster");
  for (std::uint32_t m : {1u, 2u, 3u}) {
    model::StripeReliability config;
    config.width = 4 + m;
    config.tolerance = m;
    config.node_mtbf = hours(1000);
    config.mttr = 60.0;
    const double stripe = model::mttdl(config);
    char label[32];
    std::snprintf(label, sizeof label, "m=%u%s", m,
                  m == 1 ? " (RAID-5)" : (m == 2 ? " (RDP/RS)" : " (RS)"));
    std::printf("%18s %13.1f yr %15.1f yr\n", label,
                stripe / (365.25 * 86400.0),
                model::cluster_mttdl(config, 4) / (365.25 * 86400.0));
  }

  std::printf("\ncorrelated double-node failure after 10 committed epochs "
              "(wide k=4 RAID-5 groups):\n");
  std::printf("%-24s %12s %14s %14s\n", "backend", "outcome",
              "epochs lost", "recovery");
  struct Row {
    const char* label;
    std::uint32_t flush_every;  // 0 = DVDC only
  } rows[] = {{"DVDC only", 0},
              {"DVDC + NAS (every 1)", 1},
              {"DVDC + NAS (every 4)", 4},
              {"DVDC + NAS (every 8)", 8}};
  for (const auto& row : rows) {
    const auto outcome = scripted_catastrophe(row.flush_every);
    char lost[24];
    if (outcome.survived)
      std::snprintf(lost, sizeof lost, "%u of 10", outcome.rolled_back);
    else
      std::snprintf(lost, sizeof lost, "all 10");
    std::printf("%-24s %12s %14s %14s\n", row.label,
                outcome.survived ? "RECOVERED" : "RESTART",
                lost,
                outcome.survived
                    ? bench::fmt_time(outcome.recovery_time).c_str()
                    : "-");
  }
  std::printf("\nParity degree buys stripe lifetime multiplicatively; the\n"
              "NAS level converts the residual catastrophic tail from\n"
              "'restart the job' into 'lose the flush lag'.\n");
  return 0;
}
