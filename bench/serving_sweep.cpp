// Serving sweep: the Figure-5 interval tradeoff restated in SLO terms.
//
// Fig. 5 plots completion-time ratio against checkpoint interval — the
// batch view. From a client's seat the same knob trades differently:
// output commit holds every response until its epoch commits, so
//
//   * short intervals commit (and release) guest egress often — served
//     p99 stays near queueing+service time, but checkpoint overhead
//     steals throughput (the classic Fig. 5 cost shows up as a higher
//     completion-time ratio);
//   * long intervals hold responses in the OutputCommitBuffer for most
//     of an epoch — p99/p999 and peak held bytes grow with the interval,
//     and the mid-run failure rolls back a whole epoch of egress, so
//     client-visible downtime grows too.
//
// One scripted node kill strikes every run at the same sim time, making
// failover-visible downtime a per-interval measurement rather than luck.
// Everything here is simulated: every reported number is a deterministic
// function of the seed, which is why CI can gate p99 and downtime against
// the committed baseline (bench/BENCH_serving_baseline.json, via
// bench/check_serving_regression.py) with a tight tolerance — wall-clock
// noise on shared runners never enters the metrics.
//
// Usage: serving_sweep [--intervals=0.5,1,2,5,10] [--json=PATH]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/runtime.hpp"

namespace vdc {
namespace {

constexpr SimTime kTotalWork = 60.0;
constexpr SimTime kKillAt = 32.0;
constexpr std::uint32_t kKillNode = 1;

core::ClusterConfig serving_cluster() {
  core::ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 16;
  cc.write_rate = 150.0;
  return cc;
}

workload::TrafficConfig serving_traffic(workload::TrafficConfig::Mode mode) {
  workload::TrafficConfig tc;
  tc.mode = mode;
  tc.clients_per_guest = 1000;
  tc.streams_per_guest = 4;
  tc.think_time = 10.0;   // closed: aggregate 100 req/s per stream
  tc.request_rate = 0.1;  // open: aggregate 100 req/s per guest
  tc.client_timeout = 2.0;
  tc.response_bytes = kib(2);
  tc.warmup = 2.0;
  return tc;
}

core::JobRunner::BackendFactory dvdc_backend(core::ClusterConfig cc) {
  return [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
              Rng&) -> std::unique_ptr<core::CheckpointBackend> {
    return std::make_unique<core::DvdcBackend>(
        sim, cluster, core::ProtocolConfig{}, core::RecoveryConfig{},
        core::make_workload_factory(cc));
  };
}

struct ModeResult {
  workload::TrafficPlane::Summary serve;
  core::RunResult job;
};

/// One row per interval, both loop disciplines against the same scripted
/// kill: closed loop shows the throughput collapse (a stream can issue at
/// most one request per commit), open loop shows the tail — arrivals keep
/// coming while egress is held, so p99 tracks the epoch length plus the
/// failover stall.
struct Row {
  SimTime interval = 0.0;
  ModeResult closed;
  ModeResult open;
};

ModeResult run_mode(SimTime interval, workload::TrafficConfig::Mode mode) {
  core::JobConfig job;
  job.total_work = kTotalWork;
  job.interval = interval;
  job.seed = 1234;
  failure::ScheduledFailure kill;
  kill.at = kKillAt;
  kill.node = kKillNode;
  job.failure_schedule = {kill};
  job.traffic = serving_traffic(mode);

  const core::ClusterConfig cc = serving_cluster();
  core::JobRunner runner(job, cc, dvdc_backend(cc));
  ModeResult out;
  out.job = runner.run();
  out.serve = runner.traffic()->summary();
  return out;
}

Row run_interval(SimTime interval) {
  Row row;
  row.interval = interval;
  row.closed = run_mode(interval, workload::TrafficConfig::Mode::kClosed);
  row.open = run_mode(interval, workload::TrafficConfig::Mode::kOpen);
  for (const auto* m : {&row.closed, &row.open}) {
    std::printf(
        "interval %5.2fs %-6s: p50 %7.1f ms  p99 %7.1f ms  p999 %7.1f ms  "
        "%6.0f req/s  downtime %5.2f s  held peak %9s  ratio %.3f\n",
        interval, m == &row.closed ? "closed" : "open",
        m->serve.latency_p50 * 1e3, m->serve.latency_p99 * 1e3,
        m->serve.latency_p999 * 1e3, m->serve.throughput,
        m->serve.downtime_visible,
        bench::fmt_bytes(static_cast<double>(m->serve.held_bytes_peak))
            .c_str(),
        m->job.time_ratio);
  }
  return row;
}

/// Back-pressure row: the adaptive policy with a held-bytes high-water
/// mark against the same policy with the term disabled. Open loop holds
/// an epoch's worth of egress in the OutputCommitBuffer; feeding the
/// observed peak back into the interval makes the policy commit sooner
/// whenever the buffer blows past the mark, trading a little throughput
/// for a bounded buffer (and a shorter rollback exposure).
struct BackpressureRow {
  Bytes highwater = 0;
  ModeResult with;
  ModeResult without;
};

BackpressureRow run_backpressure() {
  BackpressureRow row;
  row.highwater = mib(1);
  const auto run = [&](Bytes highwater) {
    core::JobConfig job;
    job.total_work = kTotalWork;
    job.seed = 1234;
    core::AdaptiveConfig ac;
    // Young's interval for this workload sits above the clamp, so after
    // the short first epoch the policy ramps to max_interval = 10 s —
    // unless held bytes push back, the only difference between the runs.
    ac.initial = 2.0;
    ac.min_interval = 0.5;
    ac.max_interval = 10.0;
    ac.held_highwater = highwater;
    job.interval_policy = std::make_shared<core::AdaptiveIntervalPolicy>(ac);
    // No scripted kill here: a failover stall holds egress for the whole
    // recovery window no matter what the interval policy does, and that
    // spike would mask the steady-state buffering this row measures.
    job.traffic = serving_traffic(workload::TrafficConfig::Mode::kOpen);
    const core::ClusterConfig cc = serving_cluster();
    core::JobRunner runner(job, cc, dvdc_backend(cc));
    ModeResult out;
    out.job = runner.run();
    out.serve = runner.traffic()->summary();
    return out;
  };
  row.without = run(0);
  row.with = run(row.highwater);
  for (const auto* m : {&row.without, &row.with}) {
    std::printf(
        "backpressure %-7s: p99 %7.1f ms  %6.0f req/s  held peak %9s  "
        "epochs %3u  ratio %.3f\n",
        m == &row.with ? "on" : "off", m->serve.latency_p99 * 1e3,
        m->serve.throughput,
        bench::fmt_bytes(static_cast<double>(m->serve.held_bytes_peak))
            .c_str(),
        m->job.epochs, m->job.time_ratio);
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const BackpressureRow& bp) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"serving_sweep\",\n");
  std::fprintf(out,
               "  \"config\": {\"total_work_s\": %.0f, \"kill_at_s\": %.0f, "
               "\"kill_node\": %u, \"seed\": 1234},\n",
               kTotalWork, kKillAt, kKillNode);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out, "    {\n      \"interval_s\": %g,\n", r.interval);
    const auto mode_json = [out](const char* key, const ModeResult& m,
                                 const char* tail) {
      const auto& s = m.serve;
      std::fprintf(out, "      \"%s\": {\n", key);
      std::fprintf(out,
                   "        \"latency\": {\"p50_s\": %.6f, \"p99_s\": %.6f, "
                   "\"p999_s\": %.6f, \"mean_s\": %.6f},\n",
                   s.latency_p50, s.latency_p99, s.latency_p999,
                   s.latency_mean);
      std::fprintf(out,
                   "        \"throughput_rps\": %.1f,\n"
                   "        \"downtime_visible_s\": %.4f,\n"
                   "        \"held_bytes_peak\": %llu,\n",
                   s.throughput, s.downtime_visible,
                   static_cast<unsigned long long>(s.held_bytes_peak));
      std::fprintf(
          out,
          "        \"clients\": {\"delivered\": %llu, \"retries\": %llu, "
          "\"timeouts\": %llu, \"duplicates\": %llu, "
          "\"dropped_abort\": %llu, \"dropped_failover\": %llu},\n",
          static_cast<unsigned long long>(s.delivered),
          static_cast<unsigned long long>(s.retries),
          static_cast<unsigned long long>(s.timeouts),
          static_cast<unsigned long long>(s.duplicates),
          static_cast<unsigned long long>(s.dropped_abort),
          static_cast<unsigned long long>(s.dropped_failover));
      std::fprintf(out,
                   "        \"job\": {\"time_ratio\": %.4f, "
                   "\"epochs\": %u, \"failures\": %u}\n      }%s\n",
                   m.job.time_ratio, m.job.epochs, m.job.failures, tail);
    };
    mode_json("closed", r.closed, ",");
    mode_json("open", r.open, "");
    std::fprintf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  const auto bp_mode = [out](const char* key, const ModeResult& m,
                             const char* tail) {
    std::fprintf(out,
                 "    \"%s\": {\"held_bytes_peak\": %llu, \"p99_s\": %.6f, "
                 "\"throughput_rps\": %.1f, \"epochs\": %u, "
                 "\"time_ratio\": %.4f}%s\n",
                 key,
                 static_cast<unsigned long long>(m.serve.held_bytes_peak),
                 m.serve.latency_p99, m.serve.throughput, m.job.epochs,
                 m.job.time_ratio, tail);
  };
  std::fprintf(out, "  \"backpressure\": {\n    \"highwater_bytes\": %llu,\n",
               static_cast<unsigned long long>(bp.highwater));
  bp_mode("off", bp.without, ",");
  bp_mode("on", bp.with, "");
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace vdc

int main(int argc, char** argv) {
  using namespace vdc;
  std::string json_path = "BENCH_serving.json";
  std::vector<SimTime> intervals{0.5, 1.0, 2.0, 5.0, 10.0};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--intervals=", 12) == 0) {
      intervals.clear();
      const char* p = argv[i] + 12;
      while (*p) {
        intervals.push_back(std::strtod(p, const_cast<char**>(&p)));
        if (*p == ',') ++p;
      }
    }
  }

  bench::banner(
      "Serving sweep: checkpoint interval vs client SLO",
      "output-commit latency, throughput and failover-visible downtime");

  std::vector<Row> rows;
  for (SimTime t : intervals) rows.push_back(run_interval(t));
  const BackpressureRow bp = run_backpressure();

  write_json(json_path, rows, bp);

  // Sanity gates: every interval must actually serve clients, and the
  // scripted kill must be client-visible somewhere in the sweep.
  int rc = 0;
  std::uint64_t disruptions = 0;
  for (const Row& r : rows) {
    for (const auto* m : {&r.closed, &r.open}) {
      if (m->serve.delivered == 0) {
        std::fprintf(stderr, "FAIL: interval %.2fs delivered nothing\n",
                     r.interval);
        rc = 1;
      }
      if (m->job.failures == 0) {
        std::fprintf(stderr,
                     "FAIL: interval %.2fs missed the scripted kill\n",
                     r.interval);
        rc = 1;
      }
      disruptions += m->serve.timeouts + m->serve.retries;
    }
  }
  if (disruptions == 0) {
    std::fprintf(stderr,
                 "FAIL: no client ever timed out or retried across the "
                 "sweep despite a node kill per run\n");
    rc = 1;
  }
  // The back-pressure term must actually bound the buffer: with the
  // high-water mark on, the held-bytes peak has to come down.
  if (bp.with.serve.held_bytes_peak >= bp.without.serve.held_bytes_peak) {
    std::fprintf(stderr,
                 "FAIL: held-bytes back-pressure did not reduce the peak "
                 "(%llu -> %llu)\n",
                 static_cast<unsigned long long>(
                     bp.without.serve.held_bytes_peak),
                 static_cast<unsigned long long>(
                     bp.with.serve.held_bytes_peak));
    rc = 1;
  }
  return rc;
}
