#!/usr/bin/env python3
"""CI regression gate for bench/scale_sweep.

Compares a fresh BENCH_scale.json against the committed baseline
(bench/BENCH_scale_baseline.json) and fails on a >20% regression.

Shared CI runners differ wildly in absolute speed, so the gated metric is
the calendar/heap events-per-second speedup — both queues run the same
hold model in the same process, which cancels the machine out. Absolute
events/s are printed for the record (the uploaded artifact keeps them) but
only the ratio fails the job.

The control-plane election rows are gated on an ABSOLUTE ceiling instead:
failover is measured in simulated seconds over a deterministic plane, so
it is machine-independent and needs no baseline to compare against.

Usage: check_scale_regression.py BENCH_scale.json [baseline.json]
"""

import json
import sys


def row_at(report, nodes):
    for row in report["rows"]:
        if row["nodes"] == nodes:
            return row
    sys.exit(f"no {nodes}-node row in report")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    current = json.load(open(sys.argv[1]))
    baseline_path = (
        sys.argv[2] if len(sys.argv) > 2 else "bench/BENCH_scale_baseline.json"
    )
    baseline = json.load(open(baseline_path))

    base_row = baseline["row"]
    cur_row = row_at(current, base_row["nodes"])

    base = base_row["queue"]["speedup"]
    cur = cur_row["queue"]["speedup"]
    floor = 0.8 * base

    print(f"calendar events/s: {cur_row['queue']['calendar_events_per_s']:.3e} "
          f"(baseline {base_row['queue']['calendar_events_per_s']:.3e})")
    print(f"heap events/s:     {cur_row['queue']['heap_events_per_s']:.3e} "
          f"(baseline {base_row['queue']['heap_events_per_s']:.3e})")
    print(f"speedup: {cur:.2f}x vs baseline {base:.2f}x (floor {floor:.2f}x)")

    if cur < floor:
        sys.exit(
            f"FAIL: calendar/heap speedup {cur:.2f}x regressed more than 20% "
            f"below the committed baseline {base:.2f}x"
        )
    print("OK: within 20% of baseline")

    election = current.get("election")
    if election is None:
        sys.exit("FAIL: no election-availability section in the report")
    ceiling = election["ceiling_s"]
    for row in election["rows"]:
        print(
            f"election failover at {row['nodes']} nodes: "
            f"{row['failover_max_s']:.3f} s worst of {row['trials']} "
            f"leader kills (ceiling {ceiling:.1f} s)"
        )
        if not row["safety_ok"]:
            sys.exit(
                f"FAIL: raft safety invariant violated during the "
                f"{row['nodes']}-node leader-kill trials"
            )
        if row["failover_max_s"] > ceiling:
            sys.exit(
                f"FAIL: control-plane failover {row['failover_max_s']:.3f} s "
                f"at {row['nodes']} nodes exceeds the {ceiling:.1f} s ceiling"
            )
    print("OK: election failover under ceiling at every scale")


if __name__ == "__main__":
    main()
