#pragma once
// Shared helpers for the benchmark/figure harnesses: aligned table output
// and human-readable units.

#include <cstdio>
#include <string>

#include "common/units.hpp"

namespace vdc::bench {

inline void banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n");
}

inline std::string fmt_time(SimTime t) {
  char buf[64];
  if (t < 1e-3)
    std::snprintf(buf, sizeof buf, "%.1f us", t * 1e6);
  else if (t < 1.0)
    std::snprintf(buf, sizeof buf, "%.2f ms", t * 1e3);
  else if (t < 120.0)
    std::snprintf(buf, sizeof buf, "%.2f s", t);
  else if (t < 2.0 * 3600.0)
    std::snprintf(buf, sizeof buf, "%.1f min", t / 60.0);
  else
    std::snprintf(buf, sizeof buf, "%.2f h", t / 3600.0);
  return buf;
}

inline std::string fmt_bytes(double b) {
  char buf[64];
  if (b < 1024.0)
    std::snprintf(buf, sizeof buf, "%.0f B", b);
  else if (b < 1024.0 * 1024.0)
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
  else if (b < 1024.0 * 1024.0 * 1024.0)
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1024.0 * 1024.0));
  else
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  b / (1024.0 * 1024.0 * 1024.0));
  return buf;
}

inline std::string fmt_rate(double bytes_per_sec) {
  return fmt_bytes(bytes_per_sec) + "/s";
}

}  // namespace vdc::bench
