#pragma once
// Shared helpers for the benchmark/figure harnesses: aligned table output,
// human-readable units, and opt-in trace capture (--trace=PREFIX or the
// VDC_TRACE environment variable) that dumps one Chrome trace-event file
// per instrumented run, loadable in chrome://tracing or Perfetto.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "simkit/simulator.hpp"
#include "telemetry/sinks.hpp"

namespace vdc::bench {

/// Where (and whether) to dump per-run traces. Disabled unless the binary
/// got `--trace=PREFIX` or the VDC_TRACE env var names a prefix; each
/// attached run then writes `PREFIX-<label>.json`.
class TraceSpec {
 public:
  static TraceSpec from_args(int argc, char** argv) {
    TraceSpec spec;
    for (int i = 1; i < argc; ++i)
      if (std::strncmp(argv[i], "--trace=", 8) == 0) spec.prefix_ = argv[i] + 8;
    if (spec.prefix_.empty())
      if (const char* env = std::getenv("VDC_TRACE"))
        spec.prefix_ = env;
    return spec;
  }

  bool enabled() const { return !prefix_.empty(); }

  /// Enable span tracing on `sim` and attach a Chrome trace sink writing to
  /// `PREFIX-<label>.json`. Returns nullptr when tracing is off. Call
  /// `sim.telemetry().flush()` after the run to write the file (the sink
  /// also writes on destruction as a fallback).
  std::shared_ptr<telemetry::ChromeTraceSink> attach(
      simkit::Simulator& sim, const std::string& label) const {
    if (!enabled()) return nullptr;
    auto sink = std::make_shared<telemetry::ChromeTraceSink>(
        prefix_ + "-" + label + ".json", label);
    sim.telemetry().set_enabled(true);
    sim.telemetry().add_sink(sink);
    return sink;
  }

 private:
  std::string prefix_;
};

inline void banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n");
}

inline std::string fmt_time(SimTime t) {
  char buf[64];
  if (t < 1e-3)
    std::snprintf(buf, sizeof buf, "%.1f us", t * 1e6);
  else if (t < 1.0)
    std::snprintf(buf, sizeof buf, "%.2f ms", t * 1e3);
  else if (t < 120.0)
    std::snprintf(buf, sizeof buf, "%.2f s", t);
  else if (t < 2.0 * 3600.0)
    std::snprintf(buf, sizeof buf, "%.1f min", t / 60.0);
  else
    std::snprintf(buf, sizeof buf, "%.2f h", t / 3600.0);
  return buf;
}

inline std::string fmt_bytes(double b) {
  char buf[64];
  if (b < 1024.0)
    std::snprintf(buf, sizeof buf, "%.0f B", b);
  else if (b < 1024.0 * 1024.0)
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
  else if (b < 1024.0 * 1024.0 * 1024.0)
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1024.0 * 1024.0));
  else
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  b / (1024.0 * 1024.0 * 1024.0));
  return buf;
}

inline std::string fmt_rate(double bytes_per_sec) {
  return fmt_bytes(bytes_per_sec) + "/s";
}

}  // namespace vdc::bench
