// FIG1-4 — the paper's architecture diagrams as running configurations.
//
//   Figure 1: first shot — one VM per node, N+1 nodes, the spare node is
//             the sole parity holder.
//   Figure 3: orthogonal RAID with a dedicated checkpointing node — 3
//             compute nodes x 3 VMs plus one VM-free node; every group's
//             parity necessarily lands on the spare (it is the only node
//             that hosts no member).
//   Figure 4: fully distributed DVDC — 4 nodes x 3 VMs, parity rotated
//             across all nodes, no dedicated checkpoint node.
//
// Each configuration is validated end-to-end: plan orthogonality, a
// committed epoch, one node killed, byte-exact recovery. The table reports
// parity spread (distinct holders), epoch latency and recovery time —
// showing the Fig. 3 -> Fig. 4 win: same protection, no idle node, parity
// work spread over the whole cluster.

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.hpp"
#include "core/baseline.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

struct ArchResult {
  std::size_t groups = 0;
  std::size_t distinct_holders = 0;
  SimTime epoch_latency = 0;
  SimTime recovery_time = 0;
  bool recovered_exact = false;
};

ArchResult run_architecture(const char* name, std::uint32_t nodes,
                            std::uint32_t vms_per_node,
                            std::uint32_t spare_nodes, std::uint32_t k,
                            cluster::NodeId victim) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(1234));
  ClusterConfig cc;
  cc.page_size = kib(4);
  cc.pages_per_vm = 64;
  cc.write_rate = 200.0;
  auto workloads = make_workload_factory(cc);

  for (std::uint32_t n = 0; n < nodes + spare_nodes; ++n)
    cluster.add_node();
  for (std::uint32_t n = 0; n < nodes; ++n)
    for (std::uint32_t v = 0; v < vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

  DvdcState state;
  DvdcCoordinator coord(sim, cluster, state);
  RecoveryManager recovery(sim, cluster, state, workloads);

  PlannerConfig planner;
  planner.group_size = k;
  auto placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster),
                                 cluster, ParityScheme::Raid5);

  ArchResult result;
  result.groups = placed.plan.groups.size();
  std::set<cluster::NodeId> holders;
  for (const auto& hs : placed.holders) holders.insert(hs[0]);
  result.distinct_holders = holders.size();

  coord.run_epoch(placed, 1, [&](const EpochStats& stats) {
    result.epoch_latency = stats.latency;
  });
  sim.run();

  // Snapshot committed payloads, then kill + recover.
  std::map<vm::VmId, std::vector<std::byte>> committed;
  for (vm::VmId vmid : cluster.all_vms()) {
    const auto* cp =
        state.node_store(*cluster.locate(vmid)).find(vmid, 1);
    if (cp != nullptr) committed[vmid] = cp->payload();
  }
  const auto lost = cluster.node(victim).hypervisor().vm_ids();
  cluster.kill_node(victim);
  state.drop_node(victim);
  bool ok = true;
  recovery.recover(placed, lost, [&](const RecoveryStats& stats) {
    result.recovery_time = stats.duration;
    ok = stats.success;
  });
  sim.run();

  if (ok) {
    for (vm::VmId vmid : lost) {
      const auto loc = cluster.locate(vmid);
      if (!loc.has_value() ||
          cluster.machine(vmid).image().flatten() != committed.at(vmid)) {
        ok = false;
        break;
      }
    }
  }
  result.recovered_exact = ok;

  std::printf("%-28s %7zu %9zu %14s %14s %10s\n", name, result.groups,
              result.distinct_holders,
              bench::fmt_time(result.epoch_latency).c_str(),
              bench::fmt_time(result.recovery_time).c_str(),
              result.recovered_exact ? "exact" : "FAILED");
  return result;
}

}  // namespace

int main() {
  bench::banner("FIG1-4  architecture configurations",
                "each: plan -> epoch -> kill node -> byte-exact recovery");
  std::printf("%-28s %7s %9s %14s %14s %10s\n", "architecture", "groups",
              "holders", "epoch lat", "recovery", "rebuild");

  // Fig. 1: 3 compute nodes + 1 spare, one VM each, k = 3.
  run_architecture("fig1 first-shot N+1", 3, 1, 1, 3, 0);
  // Fig. 3: 3 compute nodes x 3 VMs + dedicated checkpoint node.
  const auto fig3 =
      run_architecture("fig3 dedicated ckpt node", 3, 3, 1, 3, 1);
  // Fig. 4: 4 nodes x 3 VMs, fully distributed.
  const auto fig4 = run_architecture("fig4 distributed DVDC", 4, 3, 0, 3, 1);

  std::printf("\nfig3 vs fig4: dedicated node concentrates parity on "
              "%zu holder(s); DVDC spreads it over %zu nodes and every "
              "node computes.\n",
              fig3.distinct_holders, fig4.distinct_holders);
  return 0;
}
