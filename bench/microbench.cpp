// Micro-benchmarks (google-benchmark) of the hot kernels: the blocked XOR
// used for parity, RLE compression of sparse deltas, RDP encode/decode,
// and full-image page diffing.

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "checkpoint/delta.hpp"
#include "checkpoint/rle.hpp"
#include "checkpoint/stream.hpp"
#include "checkpoint/wire.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "parity/gf256.hpp"
#include "parity/kernels.hpp"
#include "parity/parallel.hpp"
#include "core/protocol.hpp"
#include "parity/raid5.hpp"
#include "parity/rdp.hpp"
#include "parity/reed_solomon.hpp"
#include "parity/xor.hpp"
#include "vm/workload.hpp"

namespace {

using vdc::Rng;

std::vector<std::byte> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next());
  return out;
}

void BM_XorInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  auto dst = random_bytes(rng, n);
  const auto src = random_bytes(rng, n);
  for (auto _ : state) {
    vdc::parity::xor_into(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_XorInto)->Arg(4096)->Arg(1 << 20)->Arg(16 << 20);

void BM_Raid5Encode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBlock = 1 << 20;
  Rng rng(2);
  std::vector<vdc::parity::Block> data;
  for (std::size_t i = 0; i < k; ++i)
    data.push_back(random_bytes(rng, kBlock));
  std::vector<vdc::parity::BlockView> views(data.begin(), data.end());
  vdc::parity::Raid5Codec codec(k);
  for (auto _ : state) {
    auto parity = codec.encode(views);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * kBlock));
}
BENCHMARK(BM_Raid5Encode)->Arg(3)->Arg(7)->Arg(15);

void BM_RdpEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t p = vdc::parity::RdpCodec::next_prime_at_least(k + 1);
  const std::size_t block = (p - 1) * 16384;
  Rng rng(3);
  std::vector<vdc::parity::Block> data;
  for (std::size_t i = 0; i < k; ++i) data.push_back(random_bytes(rng, block));
  std::vector<vdc::parity::BlockView> views(data.begin(), data.end());
  vdc::parity::RdpCodec codec(k, p);
  for (auto _ : state) {
    auto parity = codec.encode(views);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * block));
}
BENCHMARK(BM_RdpEncode)->Arg(3)->Arg(6)->Arg(12);

void BM_RdpReconstructTwo(benchmark::State& state) {
  const std::size_t k = 6;
  const std::size_t p = vdc::parity::RdpCodec::next_prime_at_least(k + 1);
  const std::size_t block = (p - 1) * 16384;
  Rng rng(4);
  std::vector<vdc::parity::Block> data;
  for (std::size_t i = 0; i < k; ++i) data.push_back(random_bytes(rng, block));
  std::vector<vdc::parity::BlockView> views(data.begin(), data.end());
  vdc::parity::RdpCodec codec(k, p);
  const auto parity = codec.encode(views);
  for (auto _ : state) {
    std::vector<std::optional<vdc::parity::Block>> stripe;
    for (const auto& d : data) stripe.emplace_back(d);
    stripe.emplace_back(parity[0]);
    stripe.emplace_back(parity[1]);
    stripe[0] = std::nullopt;
    stripe[3] = std::nullopt;
    codec.reconstruct(stripe);
    benchmark::DoNotOptimize(stripe[0]->data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * block));
}
BENCHMARK(BM_RdpReconstructTwo);

void BM_RleEncodeSparse(benchmark::State& state) {
  // A typical XOR delta: 4 KiB page, one 64-byte run of changes.
  std::vector<std::byte> page(4096, std::byte{0});
  for (std::size_t i = 1000; i < 1064; ++i) page[i] = std::byte{0x5a};
  for (auto _ : state) {
    auto enc = vdc::checkpoint::rle_encode(page);
    benchmark::DoNotOptimize(enc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_RleEncodeSparse);

void BM_DiffImages(benchmark::State& state) {
  const std::size_t bytes = 1 << 22;  // 4 MiB image
  Rng rng(5);
  auto old_img = random_bytes(rng, bytes);
  auto new_img = old_img;
  for (std::size_t i = 0; i < bytes; i += 64 * 4096)
    new_img[i] ^= std::byte{1};
  for (auto _ : state) {
    auto delta = vdc::checkpoint::diff_images(old_img, new_img, 4096);
    benchmark::DoNotOptimize(delta.pages.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DiffImages);

void BM_ParallelXor(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  constexpr std::size_t kSize = 32 << 20;
  Rng rng(11);
  auto dst = random_bytes(rng, kSize);
  const auto src = random_bytes(rng, kSize);
  for (auto _ : state) {
    vdc::parity::parallel_xor_into(dst, src, threads);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSize);
}
BENCHMARK(BM_ParallelXor)->Arg(1)->Arg(2)->Arg(4);

void BM_Gf256MulAdd(benchmark::State& state) {
  constexpr std::size_t kSize = 1 << 20;
  Rng rng(12);
  const auto src = random_bytes(rng, kSize);
  auto dst = random_bytes(rng, kSize);
  for (auto _ : state) {
    vdc::parity::gf256::mul_add(
        0xd3, reinterpret_cast<const std::uint8_t*>(src.data()),
        reinterpret_cast<std::uint8_t*>(dst.data()), kSize);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSize);
}
BENCHMARK(BM_Gf256MulAdd);

// --- dispatched kernel tiers -------------------------------------------------
//
// Per-tier throughput of the two primitives everything folds through. The
// tier is forced for the duration of the run and restored after, so these
// rows are directly comparable within one process: the CI perf-smoke job
// gates on the SIMD/scalar RATIO (runner speed cancels out), via
// bench/check_dataplane_regression.py.

/// Run `fn` with `tier` active, restoring the previous tier after; skips
/// the benchmark when the machine doesn't support the tier.
template <typename Fn>
void with_tier(benchmark::State& state, std::int64_t tier_arg, Fn&& fn) {
  const auto tier = static_cast<vdc::parity::KernelTier>(tier_arg);
  if (!vdc::parity::tier_supported(tier)) {
    state.SkipWithError("kernel tier not supported on this machine");
    return;
  }
  const auto previous = vdc::parity::active_kernel().tier;
  vdc::parity::set_active_tier(tier);
  state.SetLabel(vdc::parity::tier_name(tier));
  fn();
  vdc::parity::set_active_tier(previous);
}

void BM_KernelXorInto(benchmark::State& state) {
  with_tier(state, state.range(0), [&] {
    const auto n = static_cast<std::size_t>(state.range(1));
    Rng rng(21);
    auto dst = random_bytes(rng, n);
    const auto src = random_bytes(rng, n);
    for (auto _ : state) {
      vdc::parity::xor_into(dst, src);
      benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
  });
}
BENCHMARK(BM_KernelXorInto)
    ->ArgNames({"tier", "bytes"})
    ->ArgsProduct({{0, 1, 2, 3}, {4096, 1 << 20}});

void BM_KernelGf256MulAdd(benchmark::State& state) {
  with_tier(state, state.range(0), [&] {
    const auto n = static_cast<std::size_t>(state.range(1));
    Rng rng(22);
    const auto src = random_bytes(rng, n);
    auto dst = random_bytes(rng, n);
    for (auto _ : state) {
      vdc::parity::gf256::mul_add(
          0xd3, reinterpret_cast<const std::uint8_t*>(src.data()),
          reinterpret_cast<std::uint8_t*>(dst.data()), n);
      benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
  });
}
BENCHMARK(BM_KernelGf256MulAdd)
    ->ArgNames({"tier", "bytes"})
    ->ArgsProduct({{0, 1, 2, 3}, {4096, 1 << 20}});

void BM_RsEncode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBlock = 1 << 19;
  Rng rng(13);
  std::vector<vdc::parity::Block> data;
  for (int i = 0; i < 6; ++i) data.push_back(random_bytes(rng, kBlock));
  std::vector<vdc::parity::BlockView> views(data.begin(), data.end());
  vdc::parity::ReedSolomonCodec codec(6, m);
  for (auto _ : state) {
    auto parity = codec.encode(views);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(6 * kBlock));
}
BENCHMARK(BM_RsEncode)->Arg(1)->Arg(2)->Arg(3);

void BM_Crc32(benchmark::State& state) {
  constexpr std::size_t kSize = 1 << 20;
  Rng rng(14);
  const auto data = random_bytes(rng, kSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vdc::crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSize);
}
BENCHMARK(BM_Crc32);

// --- epoch data plane --------------------------------------------------------
//
// End-to-end wall-clock cost of one checkpoint epoch through the full
// coordinator, at a controlled dirty fraction, on both data planes:
//   plane 0 = fast (dirty-bitmap capture, page-sharing store, in-place
//             pooled parity folds), plane 1 = reference (flatten + diff +
//             copy). Simulated time is identical by construction; only the
//             host-side work differs. The CI perf-smoke job runs these
//             with --benchmark_filter='Dataplane' into BENCH_dataplane.json.

class DataplaneRig {
 public:
  static constexpr std::size_t kPageSize = 4096;
  static constexpr std::size_t kPageCount = 1024;  // 4 MiB per VM
  static constexpr int kVms = 3;                   // one RAID-5 group

  explicit DataplaneRig(bool reference_plane)
      : cluster_(sim_, Rng(99)),
        coord_(sim_, cluster_, state_, make_config(reference_plane)) {
    for (int n = 0; n < kVms + 1; ++n) cluster_.add_node();
    for (int n = 0; n < kVms; ++n)
      cluster_.boot_vm(n, kPageSize, kPageCount,
                       std::make_unique<vdc::vm::IdleWorkload>());
    Rng rng(7);
    for (vdc::vm::VmId vmid : cluster_.all_vms())
      cluster_.machine(vmid).image().fill_random(rng);
    vdc::core::PlannerConfig pc;
    pc.group_size = kVms;
    placed_ = vdc::core::PlacedPlan::make(
        vdc::core::GroupPlanner(pc).plan(cluster_), cluster_);
    run_epoch();  // epoch 1: full exchange, seeds store + parity
  }

  /// Flip one byte in the first `permille`/1000 of every VM's pages.
  void dirty(std::size_t permille) {
    const std::size_t pages = kPageCount * permille / 1000;
    for (vdc::vm::VmId vmid : cluster_.all_vms()) {
      auto& image = cluster_.machine(vmid).image();
      for (std::size_t p = 0; p < pages; ++p) {
        const std::byte b = image.page(p)[0] ^ std::byte{1};
        image.write(p, 0, {&b, 1});
      }
    }
  }

  void run_epoch() {
    bool committed = false;
    coord_.run_epoch(*placed_, next_epoch_,
                     [&](const vdc::core::EpochStats& stats) {
                       committed = true;
                       shipped_bytes_ += static_cast<double>(stats.bytes_shipped);
                       delta_bytes_ += static_cast<double>(stats.delta_bytes);
                       trim_bytes_ += static_cast<double>(stats.trim_bytes);
                     });
    sim_.run();
    if (!committed) std::abort();
    ++next_epoch_;
  }

  /// Cumulative wire accounting over every committed epoch (simulated, so
  /// deterministic across machines — the regression check compares these
  /// exactly, modulo float formatting).
  double shipped_bytes() const { return shipped_bytes_; }
  double delta_bytes() const { return delta_bytes_; }
  double trim_bytes() const { return trim_bytes_; }

  /// Drop the standing parity so the next epoch is a full exchange.
  void force_full_exchange() {
    for (const auto& group : placed_->plan.groups)
      state_.drop_parity(group.id);
  }

  double metric(const char* name) const {
    return sim_.telemetry().metrics().value(name);
  }

  static std::int64_t image_bytes() {
    return static_cast<std::int64_t>(kVms * kPageSize * kPageCount);
  }

 private:
  static vdc::core::ProtocolConfig make_config(bool reference) {
    vdc::core::ProtocolConfig config;
    config.reference_data_plane = reference;
    return config;
  }

  vdc::simkit::Simulator sim_;
  vdc::cluster::ClusterManager cluster_;
  vdc::core::DvdcState state_;
  vdc::core::DvdcCoordinator coord_;
  std::optional<vdc::core::PlacedPlan> placed_;
  vdc::checkpoint::Epoch next_epoch_ = 1;
  double shipped_bytes_ = 0.0;
  double delta_bytes_ = 0.0;
  double trim_bytes_ = 0.0;
};

void dataplane_counters(benchmark::State& state, const DataplaneRig& rig,
                        double copy0, double cap0, double fold0) {
  const auto iters = static_cast<double>(state.iterations());
  state.counters["copy_bytes_per_epoch"] =
      (rig.metric("dvdc.copy.bytes") - copy0) / iters;
  state.counters["capture_ms_per_epoch"] =
      (rig.metric("dvdc.wall.capture_ns") - cap0) / iters * 1e-6;
  state.counters["fold_ms_per_epoch"] =
      (rig.metric("dvdc.wall.fold_ns") - fold0) / iters * 1e-6;
}

void BM_DataplaneIncrementalEpoch(benchmark::State& state) {
  const bool reference = state.range(0) != 0;
  const auto permille = static_cast<std::size_t>(state.range(1));
  DataplaneRig rig(reference);
  const double copy0 = rig.metric("dvdc.copy.bytes");
  const double cap0 = rig.metric("dvdc.wall.capture_ns");
  const double fold0 = rig.metric("dvdc.wall.fold_ns");
  const double wire0 = rig.shipped_bytes();
  const double delta0 = rig.delta_bytes();
  const double trim0 = rig.trim_bytes();
  for (auto _ : state) {
    state.PauseTiming();
    rig.dirty(permille);
    state.ResumeTiming();
    rig.run_epoch();
  }
  dataplane_counters(state, rig, copy0, cap0, fold0);
  // Simulated-time byte accounting: identical run to run and machine to
  // machine, so the regression check gates on these exactly. On the delta
  // path every shipped byte is a VDD1 frame (wire == delta).
  const auto iters = static_cast<double>(state.iterations());
  state.counters["wire_bytes_per_epoch"] =
      (rig.shipped_bytes() - wire0) / iters;
  state.counters["delta_wire_bytes_per_epoch"] =
      (rig.delta_bytes() - delta0) / iters;
  // What a trim-only encoder would have shipped for the same epochs; the
  // regression gate asserts delta <= trim on every row (real compression).
  state.counters["trim_wire_bytes_per_epoch"] =
      (rig.trim_bytes() - trim0) / iters;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          DataplaneRig::image_bytes());
}
// {plane 0|1} x {dirty fraction 1%, 10%, 50% in permille}
BENCHMARK(BM_DataplaneIncrementalEpoch)
    ->ArgNames({"ref", "dirty_pm"})
    ->ArgsProduct({{0, 1}, {10, 100, 500}})
    ->Unit(benchmark::kMillisecond);

void BM_DataplaneFullExchangeEpoch(benchmark::State& state) {
  const bool reference = state.range(0) != 0;
  DataplaneRig rig(reference);
  const double copy0 = rig.metric("dvdc.copy.bytes");
  const double cap0 = rig.metric("dvdc.wall.capture_ns");
  const double fold0 = rig.metric("dvdc.wall.fold_ns");
  for (auto _ : state) {
    state.PauseTiming();
    rig.dirty(100);
    rig.force_full_exchange();
    state.ResumeTiming();
    rig.run_epoch();
  }
  dataplane_counters(state, rig, copy0, cap0, fold0);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          DataplaneRig::image_bytes());
}
BENCHMARK(BM_DataplaneFullExchangeEpoch)
    ->ArgNames({"ref"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_WireRoundtrip(benchmark::State& state) {
  Rng rng(15);
  vdc::checkpoint::Checkpoint cp;
  cp.vm = 1;
  cp.epoch = 2;
  cp.page_size = 4096;
  cp.payload = random_bytes(rng, 1 << 20);
  for (auto _ : state) {
    auto frame = vdc::checkpoint::encode_frame(cp);
    auto back = vdc::checkpoint::decode_frame(frame);
    benchmark::DoNotOptimize(back.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 20));
}
BENCHMARK(BM_WireRoundtrip);

// Streaming wire plane: a synthetic epoch's worth of dirty pages (4 KiB
// pages, 64-byte write burst per dirty page) encoded and ingested without
// ever materializing a whole frame.
struct StreamFixture {
  static constexpr std::size_t kPageSize = 4096;
  static constexpr std::size_t kPageCount = 1024;

  std::vector<std::vector<std::byte>> xors;  // one x = old^new per dirty page
  std::vector<vdc::vm::PageIndex> pages;

  explicit StreamFixture(std::size_t dirty_permille) {
    Rng rng(41);
    const std::size_t dirty = kPageCount * dirty_permille / 1000;
    for (std::size_t p = 0; p < dirty; ++p) {
      std::vector<std::byte> x(kPageSize, std::byte{0});
      const std::size_t off = (p * 257) % (kPageSize - 64);
      for (std::size_t i = 0; i < 64; ++i)
        x[off + i] = static_cast<std::byte>(rng.next() | 1);
      xors.push_back(std::move(x));
      pages.push_back(static_cast<vdc::vm::PageIndex>(p));
    }
  }

  vdc::checkpoint::DeltaFrameSource encode() const {
    vdc::checkpoint::DeltaFrameSource src(/*vm=*/1, /*epoch=*/2,
                                          /*base_epoch=*/1, kPageSize);
    for (std::size_t i = 0; i < xors.size(); ++i) {
      auto rec = vdc::checkpoint::encode_record(xors[i]);
      src.add_record(pages[i], std::move(rec.bytes), rec.raw, rec.trim_len);
    }
    src.seal();
    return src;
  }
};

void BM_StreamEncode(benchmark::State& state) {
  const StreamFixture fx(static_cast<std::size_t>(state.range(0)));
  std::size_t frame_bytes = 0;
  for (auto _ : state) {
    // Encode + stream the frame out in 64 KiB chunk windows, the way the
    // exchange path hands ChunkedStream payloads straight out of the
    // source's spans.
    const auto src = fx.encode();
    const std::size_t total = src.size();
    frame_bytes = total;
    for (std::size_t lo = 0; lo < total; lo += 65536) {
      const std::size_t hi = std::min(total, lo + 65536);
      src.for_each_range(lo, hi, [](std::span<const std::byte> s) {
        benchmark::DoNotOptimize(s.data());
      });
    }
  }
  benchmark::DoNotOptimize(frame_bytes);
  // Throughput over the page bytes scanned, not the (much smaller)
  // compressed frame: encode cost is dominated by the x scans.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.xors.size() *
                                                    StreamFixture::kPageSize));
}
BENCHMARK(BM_StreamEncode)->ArgName("dirty_pm")->Arg(10)->Arg(100);

void BM_DeltaIngest(benchmark::State& state) {
  const StreamFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto frame = fx.encode().bytes();
  std::vector<std::byte> parity(StreamFixture::kPageSize *
                                    StreamFixture::kPageCount,
                                std::byte{0});
  for (auto _ : state) {
    // Fold-from-wire: feed 64 KiB receive chunks, XOR literal runs into
    // the standing block as they decode — bounded state, no reassembly.
    vdc::checkpoint::DeltaReader reader(
        [&](vdc::vm::PageIndex page, std::size_t off,
            std::span<const std::byte> lits) {
          vdc::parity::xor_into(
              std::span<std::byte>(
                  parity.data() + page * StreamFixture::kPageSize + off,
                  lits.size()),
              lits);
        });
    for (std::size_t lo = 0; lo < frame.size(); lo += 65536) {
      const std::size_t n = std::min<std::size_t>(65536, frame.size() - lo);
      reader.feed(std::span<const std::byte>(frame.data() + lo, n));
    }
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_DeltaIngest)->ArgName("dirty_pm")->Arg(10)->Arg(100);

}  // namespace
