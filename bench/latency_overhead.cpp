// CLAIM-LAT — Section II-B.2: "diskless checkpointing is primarily a
// method not for reducing overhead, but latency" (Plank measured a 34x
// latency win). Overhead = time guests are suspended; latency = time until
// the checkpoint is usable/durable.
//
// Four variants, one DES epoch each, identical cluster and data:
//   disk-full sync   — paused until durable on the NAS (the baseline)
//   disk-full async  — resume after local capture; flush in background
//   DVDC sync        — paused through exchange + XOR
//   DVDC COW         — resume after the 40 ms quiesce; exchange overlaps

#include <cstdio>

#include "bench_util.hpp"
#include "core/baseline.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

ClusterConfig shape() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.page_size = kib(4);
  cc.pages_per_vm = 256;  // 1 MiB images
  cc.write_rate = 0.0;
  cc.node_spec.nic_rate = mib_per_s(100);
  return cc;
}

template <typename MakeBackend>
EpochStats run_epoch(MakeBackend make_backend) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(3));
  const ClusterConfig cc = shape();
  auto workloads = make_workload_factory(cc);
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    cluster.add_node(cc.node_spec);
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    for (std::uint32_t v = 0; v < cc.vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

  auto backend = make_backend(sim, cluster, workloads);
  for (cluster::NodeId nid : cluster.alive_nodes())
    cluster.node(nid).hypervisor().pause_all();
  EpochStats stats;
  backend->checkpoint(1, [&](const EpochStats& s) { stats = s; });
  sim.run();
  return stats;
}

}  // namespace

int main() {
  bench::banner("CLAIM-LAT  overhead vs. latency per checkpoint",
                "4 nodes x 3 VMs x 1 MiB; 100 MiB/s NICs; 40 ms quiesce");

  DiskFullConfig df_sync;
  df_sync.nas.frontend_rate = mib_per_s(100);
  df_sync.nas.array = storage::DiskSpec{mib_per_s(60), mib_per_s(80),
                                        milliseconds(5)};
  DiskFullConfig df_async = df_sync;
  df_async.synchronous = false;

  ProtocolConfig dvdc_sync;
  dvdc_sync.copy_on_write = false;
  ProtocolConfig dvdc_cow;
  dvdc_cow.copy_on_write = true;

  struct Row {
    const char* name;
    EpochStats stats;
  };
  Row rows[] = {
      {"disk-full sync",
       run_epoch([&](auto& sim, auto& cluster, auto& workloads) {
         return std::make_unique<DiskFullBackend>(sim, cluster, workloads,
                                                  df_sync);
       })},
      {"disk-full async",
       run_epoch([&](auto& sim, auto& cluster, auto& workloads) {
         return std::make_unique<DiskFullBackend>(sim, cluster, workloads,
                                                  df_async);
       })},
      {"DVDC sync",
       run_epoch([&](auto& sim, auto& cluster, auto& workloads) {
         return std::make_unique<DvdcBackend>(sim, cluster, dvdc_sync,
                                              RecoveryConfig{}, workloads);
       })},
      {"DVDC copy-on-write",
       run_epoch([&](auto& sim, auto& cluster, auto& workloads) {
         return std::make_unique<DvdcBackend>(sim, cluster, dvdc_cow,
                                              RecoveryConfig{}, workloads);
       })},
  };

  std::printf("%-20s %14s %14s %12s\n", "variant", "overhead", "latency",
              "lat/ovh");
  for (const auto& row : rows)
    std::printf("%-20s %14s %14s %11.1fx\n", row.name,
                bench::fmt_time(row.stats.overhead).c_str(),
                bench::fmt_time(row.stats.latency).c_str(),
                row.stats.latency / row.stats.overhead);

  const double lat_win = rows[0].stats.latency / rows[3].stats.latency;
  std::printf("\nDVDC-COW checkpoint usable %.0fx sooner than the sync "
              "disk-full flush (Plank reported ~34x on his testbed).\n",
              lat_win);
  return 0;
}
