// ABL-SCRUB — how often must parity be scrubbed?
//
// Diskless checkpoints live in volatile RAM (the unreliability the paper's
// §II-B.2 RAID analogy is about). If a bit flips in a stored parity block
// and a node then fails, reconstruction silently produces a corrupted VM.
// We inject random parity bit-flips as a Poisson process, run periodic
// scrub-and-repair at different periods, strike node failures at random
// instants, and count how many recoveries would have been poisoned.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "core/recovery.hpp"
#include "core/runtime.hpp"
#include "core/scrub.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

struct Trial {
  int recoveries = 0;
  int poisoned = 0;
};

Trial run(SimTime scrub_period, SimTime corruption_mtbf, int events,
          std::uint64_t seed) {
  Trial trial;
  Rng rng(seed);

  for (int e = 0; e < events; ++e) {
    simkit::Simulator sim;
    cluster::ClusterManager cluster(sim, Rng(seed * 1000 + e));
    ClusterConfig cc;
    cc.page_size = kib(4);
    cc.pages_per_vm = 32;
    cc.write_rate = 0.0;
    auto workloads = make_workload_factory(cc);
    for (int n = 0; n < 4; ++n) cluster.add_node();
    for (int n = 0; n < 4; ++n)
      for (int v = 0; v < 2; ++v)
        cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

    DvdcState state;
    DvdcCoordinator coord(sim, cluster, state);
    RecoveryManager recovery(sim, cluster, state, workloads);
    ParityScrubber scrubber(sim, cluster, state);
    auto placed = PlacedPlan::make(GroupPlanner().plan(cluster), cluster);
    coord.run_epoch(placed, 1, [](const EpochStats&) {});
    sim.run();

    std::map<vm::VmId, std::vector<std::byte>> committed;
    for (vm::VmId vmid : cluster.all_vms())
      committed[vmid] = state.node_store(*cluster.locate(vmid))
                            .find(vmid, 1)
                            ->payload();

    // Timeline until the node failure: corruption events arrive at rate
    // 1/corruption_mtbf; scrubs repair at the period boundaries.
    const SimTime fail_at = rng.uniform(0.0, hours(1));
    SimTime t = 0.0;
    SimTime next_corruption = rng.exponential(1.0 / corruption_mtbf);
    SimTime next_scrub =
        scrub_period > 0 ? scrub_period : fail_at + 1.0;
    while (true) {
      const SimTime next = std::min({next_corruption, next_scrub, fail_at});
      t = next;
      if (t >= fail_at) break;
      if (next == next_corruption) {
        const auto gid = static_cast<GroupId>(
            rng.uniform_u64(placed.plan.groups.size()));
        const auto offset = rng.uniform_u64(kib(4) * 32);
        scrubber.inject_corruption(gid, 0, offset);
        next_corruption = t + rng.exponential(1.0 / corruption_mtbf);
      } else {
        scrubber.scrub(placed, /*repair=*/true, [](const ScrubReport&) {});
        sim.run();
        next_scrub = t + scrub_period;
      }
    }

    // Node failure + recovery; check the rebuilt bytes.
    const cluster::NodeId victim = 1;
    const auto lost = cluster.node(victim).hypervisor().vm_ids();
    cluster.kill_node(victim);
    state.drop_node(victim);
    bool ok = false;
    recovery.recover(placed, lost,
                     [&](const RecoveryStats& s) { ok = s.success; });
    sim.run();
    if (!ok) continue;
    ++trial.recoveries;
    for (vm::VmId vmid : lost) {
      if (cluster.machine(vmid).image().flatten() != committed.at(vmid)) {
        ++trial.poisoned;
        break;
      }
    }
  }
  return trial;
}

}  // namespace

int main() {
  bench::banner("ABL-SCRUB  scrub period vs. silent parity corruption",
                "random bit flips (MTBF 10 min) before a failure at a "
                "random instant within 1 h; 40 trials per cell");
  std::printf("%16s %12s %12s %12s\n", "scrub period", "recoveries",
              "poisoned", "rate");
  const SimTime corruption_mtbf = minutes(10);
  for (SimTime period : {0.0, hours(1), minutes(15), minutes(2)}) {
    const Trial trial = run(period, corruption_mtbf, 40, 99);
    std::printf("%16s %12d %12d %11.0f%%\n",
                period > 0 ? bench::fmt_time(period).c_str() : "never",
                trial.recoveries, trial.poisoned,
                trial.recoveries
                    ? 100.0 * trial.poisoned / trial.recoveries
                    : 0.0);
  }
  std::printf("\nWithout scrubbing, most recoveries silently rebuild "
              "corrupted VMs once bit flips outpace failures; scrubbing "
              "at a period well under the corruption MTBF shrinks the "
              "exposure window toward zero.\n");
  return 0;
}
