// CLAIM-XOR — Section V-B: "an in-memory XOR operation is going to be
// orders-of-magnitude faster than a disk write operation of the same
// size."
//
// The XOR side is *measured* (wall clock over the real blocked-XOR kernel
// this library uses for parity); the disk side uses the simulator's timing
// model for the paper-era NAS array (400 MiB/s + 5 ms positioning) and a
// commodity local disk (150 MiB/s + 8 ms). The ratio is the claim.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "parity/xor.hpp"
#include "storage/disk.hpp"

using namespace vdc;

namespace {

double measure_xor_rate(std::size_t bytes) {
  Rng rng(1);
  std::vector<std::byte> dst(bytes), src(bytes);
  for (auto& b : src) b = static_cast<std::byte>(rng.next());
  // Warm up.
  parity::xor_into(dst, src);

  const int reps = bytes >= mib(64) ? 4 : 16;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) parity::xor_into(dst, src);
  const auto end = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration<double>(end - start).count() / reps;
  return static_cast<double>(bytes) / secs;
}

}  // namespace

int main() {
  bench::banner("CLAIM-XOR  in-memory XOR vs. disk write of the same size",
                "XOR measured on this machine; disks from the timing model");

  storage::DiskSpec nas_array{mib_per_s(400), mib_per_s(500),
                              milliseconds(5)};
  storage::DiskSpec local{mib_per_s(150), mib_per_s(160), milliseconds(8)};
  simkit::Simulator sim;
  storage::Disk nas_disk(sim, nas_array);
  storage::Disk local_disk(sim, local);

  std::printf("%10s  %14s  %12s  %12s  %10s  %10s\n", "size", "XOR rate",
              "XOR time", "NAS write", "local", "NAS/XOR");
  for (Bytes size : {mib(16), mib(64), mib(256)}) {
    const double xor_rate = measure_xor_rate(size);
    const double xor_time = static_cast<double>(size) / xor_rate;
    const double nas_time = nas_disk.write_service_time(size);
    const double local_time = local_disk.write_service_time(size);
    std::printf("%10s  %14s  %12s  %12s  %10s  %9.0fx\n",
                bench::fmt_bytes(static_cast<double>(size)).c_str(),
                bench::fmt_rate(xor_rate).c_str(),
                bench::fmt_time(xor_time).c_str(),
                bench::fmt_time(nas_time).c_str(),
                bench::fmt_time(local_time).c_str(), nas_time / xor_time);
  }
  std::printf("\nAnything above ~10x supports the paper's argument; on "
              "modern memory the gap is 1-2 orders of magnitude.\n");
  return 0;
}
