#!/usr/bin/env python3
"""CI regression gate for bench/serving_sweep.

Compares a fresh BENCH_serving.json against the committed baseline
(bench/BENCH_serving_baseline.json) and fails when the client-visible SLO
regressed: open-loop p99 latency or failover-visible downtime above the
baseline at any swept interval.

Unlike the throughput benches, every serving number is *simulated* — a
deterministic function of the seed, independent of the runner's speed —
so the tolerance only has to absorb float/libm differences across
toolchains, not machine noise. p99 gates at baseline * 1.10; downtime at
baseline + max(10%, 0.25 s). Closed-loop numbers and byte/count columns
are printed for the record (the uploaded artifact keeps them) but only
the open-loop SLO columns fail the job.

Usage: check_serving_regression.py BENCH_serving.json [baseline.json]
"""

import json
import sys


def row_at(report, interval):
    for row in report["rows"]:
        if row["interval_s"] == interval:
            return row
    sys.exit(f"no interval_s={interval} row in report")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    current = json.load(open(sys.argv[1]))
    baseline_path = (
        sys.argv[2] if len(sys.argv) > 2 else "bench/BENCH_serving_baseline.json"
    )
    baseline = json.load(open(baseline_path))

    failures = []
    for base_row in baseline["rows"]:
        interval = base_row["interval_s"]
        cur_row = row_at(current, interval)

        base_p99 = base_row["open"]["latency"]["p99_s"]
        cur_p99 = cur_row["open"]["latency"]["p99_s"]
        p99_ceiling = base_p99 * 1.10

        base_down = base_row["open"]["downtime_visible_s"]
        cur_down = cur_row["open"]["downtime_visible_s"]
        down_ceiling = base_down + max(0.10 * base_down, 0.25)

        delivered = cur_row["open"]["clients"]["delivered"]

        print(
            f"interval {interval:5}s: open p99 {cur_p99:7.3f}s "
            f"(ceiling {p99_ceiling:7.3f}s)  downtime {cur_down:6.3f}s "
            f"(ceiling {down_ceiling:6.3f}s)  delivered {delivered}"
        )
        if cur_p99 > p99_ceiling:
            failures.append(
                f"interval {interval}s: open-loop p99 {cur_p99:.3f}s exceeds "
                f"{p99_ceiling:.3f}s (baseline {base_p99:.3f}s + 10%)"
            )
        if cur_down > down_ceiling:
            failures.append(
                f"interval {interval}s: failover-visible downtime "
                f"{cur_down:.3f}s exceeds {down_ceiling:.3f}s "
                f"(baseline {base_down:.3f}s)"
            )
        if delivered == 0:
            failures.append(f"interval {interval}s: delivered nothing")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("OK: open-loop p99 and failover downtime within baseline ceilings")


if __name__ == "__main__":
    main()
