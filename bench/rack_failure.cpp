// ABL-RACK — correlated failures beyond a single node.
//
// The paper's orthogonality argument ("gridding RAID groups of disks
// across different controllers", Section IV-B) generalises from nodes to
// racks: if a whole rack can fail at once (switch, PDU), members of a
// RAID group must sit in pairwise distinct racks or a single rack event
// becomes a multi-erasure. We kill each rack in turn and report survival
// under three plans on the same 4-rack x 2-node x 1-VM cluster:
//
//   rack-oblivious RAID-5   — groups may straddle a rack: data loss
//   rack-aware RAID-5       — <= 1 member (and no parity) per rack: safe
//   rack-oblivious RDP      — pays 2x parity to survive double erasures

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "core/recovery.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

struct Outcome {
  int racks_survived = 0;
  int racks_total = 0;
  SimTime worst_recovery = 0.0;
};

Outcome run(bool rack_aware, ParityScheme scheme) {
  constexpr std::uint32_t kRacks = 4, kPerRack = 2;
  Outcome outcome;
  outcome.racks_total = kRacks;

  for (std::uint32_t doomed = 0; doomed < kRacks; ++doomed) {
    simkit::Simulator sim;
    cluster::ClusterManager cluster(sim, Rng(100 + doomed));
    for (std::uint32_t r = 0; r < kRacks; ++r)
      for (std::uint32_t i = 0; i < kPerRack; ++i) {
        cluster::NodeSpec spec;
        spec.rack = r;
        cluster.add_node(spec);
      }
    ClusterConfig cc;
    cc.page_size = kib(4);
    cc.pages_per_vm = 32;
    cc.write_rate = 0.0;
    auto workloads = make_workload_factory(cc);
    for (cluster::NodeId n = 0; n < kRacks * kPerRack; ++n)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

    DvdcState state;
    ProtocolConfig pc;
    pc.scheme = scheme;
    DvdcCoordinator coord(sim, cluster, state, pc);
    RecoveryManager recovery(sim, cluster, state, workloads);
    PlannerConfig planner;
    planner.group_size = 3;
    planner.rack_aware = rack_aware;
    auto placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster),
                                   cluster, scheme);
    coord.run_epoch(placed, 1, [](const EpochStats&) {});
    sim.run();

    const auto lost = cluster.kill_rack(doomed);
    for (cluster::NodeId nid = 0; nid < kRacks * kPerRack; ++nid)
      if (!cluster.node(nid).alive()) state.drop_node(nid);
    bool ok = false;
    SimTime duration = 0.0;
    recovery.recover(placed, lost, [&](const RecoveryStats& s) {
      ok = s.success;
      duration = s.duration;
    });
    sim.run();
    if (ok) {
      ++outcome.racks_survived;
      outcome.worst_recovery = std::max(outcome.worst_recovery, duration);
    }
  }
  return outcome;
}

SimTime epoch_latency(bool rack_aware, Rate uplink) {
  constexpr std::uint32_t kRacks = 4, kPerRack = 2;
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(42));
  for (std::uint32_t r = 0; r < kRacks; ++r) {
    cluster.fabric().set_rack_uplink(r, uplink);
    for (std::uint32_t i = 0; i < kPerRack; ++i) {
      cluster::NodeSpec spec;
      spec.rack = r;
      spec.nic_rate = mib_per_s(100);
      cluster.add_node(spec);
    }
  }
  ClusterConfig cc;
  cc.page_size = kib(4);
  cc.pages_per_vm = 256;  // 1 MiB
  cc.write_rate = 0.0;
  auto workloads = make_workload_factory(cc);
  for (cluster::NodeId n = 0; n < kRacks * kPerRack; ++n)
    cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));
  DvdcState state;
  ProtocolConfig pc;
  pc.base_overhead = 0.0;
  pc.commit_latency = 0.0;
  DvdcCoordinator coord(sim, cluster, state, pc);
  PlannerConfig planner;
  planner.group_size = 3;
  planner.rack_aware = rack_aware;
  auto placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster),
                                 cluster, ParityScheme::Raid5);
  SimTime latency = 0;
  coord.run_epoch(placed, 1,
                  [&](const EpochStats& s) { latency = s.latency; });
  sim.run();
  return latency;
}

}  // namespace

int main() {
  bench::banner("ABL-RACK  whole-rack correlated failures",
                "4 racks x 2 nodes x 1 VM; every rack killed in turn");
  std::printf("%-26s %12s %16s\n", "plan", "survived", "worst recovery");

  struct Row {
    const char* name;
    bool rack_aware;
    ParityScheme scheme;
  } rows[] = {
      {"rack-oblivious RAID-5", false, ParityScheme::Raid5},
      {"rack-aware RAID-5", true, ParityScheme::Raid5},
      {"rack-oblivious RDP", false, ParityScheme::Rdp},
  };
  for (const auto& row : rows) {
    const Outcome o = run(row.rack_aware, row.scheme);
    std::printf("%-26s %8d / %d %16s\n", row.name, o.racks_survived,
                o.racks_total,
                o.racks_survived > 0 ? bench::fmt_time(o.worst_recovery)
                                           .c_str()
                                     : "-");
  }
  std::printf("\nRack-aware placement makes every rack event a single\n"
              "erasure per stripe — the same orthogonality trick the paper\n"
              "plays at node level, one fault-domain level up. RDP buys the\n"
              "same survival with parity instead of placement.\n");

  std::printf("\nthe price: rack-aware exchange crosses the oversubscribed "
              "core\n");
  std::printf("%14s %16s %16s\n", "core uplink", "oblivious epoch",
              "rack-aware epoch");
  for (Rate uplink : {mib_per_s(400), mib_per_s(100), mib_per_s(25)}) {
    std::printf("%14s %16s %16s\n", bench::fmt_rate(uplink).c_str(),
                bench::fmt_time(epoch_latency(false, uplink)).c_str(),
                bench::fmt_time(epoch_latency(true, uplink)).c_str());
  }
  std::printf("\nFault-domain safety is bought with core bandwidth: the\n"
              "rack-aware exchange slows as the core oversubscribes, while\n"
              "the oblivious plan keeps most traffic rack-local.\n");
  return 0;
}
