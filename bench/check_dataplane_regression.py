#!/usr/bin/env python3
"""Gate BENCH_dataplane.json against the committed baseline.

Four checks, all designed to be meaningful on noisy shared runners:

1. Delta-path wire bytes. The dataplane benchmarks account wire traffic in
   SIMULATED time, so `wire_bytes_per_epoch` and `delta_wire_bytes_per_epoch`
   are bit-deterministic across machines. The baseline records the expected
   per-epoch byte counts for each incremental row; any drift (a delta frame
   growing, a member silently falling back to full payloads) fails the gate.
   Both counters must match the SAME expected value: on the delta path every
   shipped byte is a VDD1 frame.

2. Copy-bytes ceilings. `copy_bytes_per_epoch` on the fast plane is a
   simulated-metric count of actual data-plane copies, so it is also
   deterministic. The baseline sets a per-row MAXIMUM: the zero-copy path
   keeps per-epoch copies O(dirty bytes), and any reintroduced
   whole-image flatten blows through the ceiling by three orders of
   magnitude.

3. Compression honesty. Every incremental row must ship
   `delta_wire_bytes_per_epoch` <= `trim_wire_bytes_per_epoch`: the
   per-record min(RLE, trim) choice can never do worse than a trim-only
   encoder.

4. Kernel throughput ratios. Absolute MB/s depends on the runner, but the
   SIMD and scalar tiers run in the same process seconds apart, so their
   RATIO cancels machine speed. The baseline sets a minimum ratio per kernel
   (measured headroom is ~2x for XOR and ~14x for gf256 at the gated size,
   so the gates have generous slack).

Usage: check_dataplane_regression.py BENCH_dataplane.json baseline.json
"""

import json
import sys

SIMD_TIERS = (2, 3)  # Avx2, Neon


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    rows = {
        b["name"]: b
        for b in bench.get("benchmarks", [])
        if not b.get("error_occurred")
    }
    failures = []

    for name, expected in baseline["wire_bytes_per_epoch"].items():
        row = rows.get(name)
        if row is None:
            failures.append(f"missing benchmark row {name}")
            continue
        for counter in ("wire_bytes_per_epoch", "delta_wire_bytes_per_epoch"):
            got = row.get(counter)
            if got is None:
                failures.append(f"{name}: counter {counter} missing")
            elif abs(got - expected) > 0.01 * expected:
                failures.append(
                    f"{name}: {counter} = {got:.0f}, expected {expected:.0f}"
                )

    for name, ceiling in baseline.get("copy_bytes_per_epoch_max", {}).items():
        row = rows.get(name)
        if row is None:
            failures.append(f"missing benchmark row {name}")
            continue
        got = row.get("copy_bytes_per_epoch")
        if got is None:
            failures.append(f"{name}: counter copy_bytes_per_epoch missing")
        elif got > ceiling:
            failures.append(
                f"{name}: copy_bytes_per_epoch = {got:.0f} exceeds "
                f"ceiling {ceiling:.0f}"
            )

    for name, row in rows.items():
        trim = row.get("trim_wire_bytes_per_epoch")
        delta = row.get("delta_wire_bytes_per_epoch")
        if trim is None or delta is None:
            continue
        if delta > trim * 1.0001:
            failures.append(
                f"{name}: delta wire bytes {delta:.0f} exceed trim-only "
                f"bytes {trim:.0f} (compression made things worse)"
            )

    for kernel, spec in baseline["kernel_ratios"].items():
        scalar_name = f"{spec['bench']}/tier:0/bytes:{spec['bytes']}"
        scalar = rows.get(scalar_name)
        if scalar is None:
            failures.append(f"{kernel}: missing scalar row {scalar_name}")
            continue
        simd_bps = 0.0
        simd_name = None
        for tier in SIMD_TIERS:
            row = rows.get(f"{spec['bench']}/tier:{tier}/bytes:{spec['bytes']}")
            if row and row.get("bytes_per_second", 0.0) > simd_bps:
                simd_bps = row["bytes_per_second"]
                simd_name = row["name"]
        if simd_name is None:
            failures.append(f"{kernel}: no SIMD tier ran (rows missing)")
            continue
        ratio = simd_bps / scalar["bytes_per_second"]
        if ratio < spec["min_ratio"]:
            failures.append(
                f"{kernel}: {simd_name} is only {ratio:.2f}x scalar "
                f"(need {spec['min_ratio']}x)"
            )
        else:
            print(
                f"OK {kernel}: {simd_name} at {ratio:.1f}x scalar "
                f"(gate {spec['min_ratio']}x)"
            )

    if failures:
        for f_ in failures:
            print("FAIL:", f_)
        return 1
    print("OK: wire bytes exact, copy bytes under ceilings, delta <= trim, kernel ratios above gates")
    return 0


if __name__ == "__main__":
    sys.exit(main())
