// Scale sweep: the three 10k-node mechanisms, measured together.
//
//   1. Event throughput — the classic "hold model" (N pending timers,
//      every pop schedules a successor) through both EventQueue
//      implementations, raw and under a full Simulator. The calendar
//      queue's O(1)-amortized pop is the events/s headroom claim; at the
//      largest scale the sweep EXITS NON-ZERO if calendar < 3x heap on
//      the raw queue (simulated order is identical either way, asserted
//      by tests/event_queue_equivalence_test.cpp).
//   2. Placement — orthogonal vs declustered plans at scale: plan build
//      time and, for sampled single-node failures, the per-survivor
//      rebuild-load spread (max, mean over survivors, max/mean). The
//      declustered layout's point is pushing max/mean toward 1. A rebuild
//      DRIVE then proves the plan-level claim end-to-end: sampled node
//      kills recovered over the real fabric, with the per-survivor
//      `recovery.served_bytes` metric gated against the plan-derived
//      prediction and the decluster_test concentration bound.
//   3. Flow solver — random sparse point-to-point flow churn; the
//      incremental component solver's flows-solved counter vs the full
//      solver's (full measured directly up to 1k nodes, arithmetic
//      otherwise — it is Sum(active) by definition).
//   4. Election availability — replicated-control-plane failover: kill
//      the seated leader at 200/1k/10k nodes and measure sim-time to the
//      next quorum-committed control record. Gated on an absolute sim-time
//      ceiling (deterministic, so machine-independent) and the raft safety
//      invariants; check_scale_regression.py re-checks the ceiling in CI.
//
// Emits BENCH_scale.json (--json=PATH, default BENCH_scale.json). CI runs
// the 1k row and gates on events/s regression vs the committed baseline
// (.github/bench_baselines/scale_1k.json).
//
// Usage: scale_sweep [--nodes=1000,10000] [--events=2000000]
//                    [--json=PATH]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "controlplane/raft.hpp"
#include "core/plan.hpp"
#include "core/recovery.hpp"
#include "net/flow_network.hpp"
#include "simkit/event_queue.hpp"
#include "simkit/simulator.hpp"
#include "vm/workload.hpp"

namespace vdc {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::size_t kVmsPerNode = 10;
constexpr std::uint32_t kGroupSize = 15;
constexpr std::size_t kSpreadSample = 32;

// --- 1. event throughput ----------------------------------------------------

/// Raw hold model: `population` pending entries, `ops` pop+push cycles
/// with exponential inter-event gaps. Gaps come from a precomputed table
/// so the timed loop measures the queue, not log(); the concrete queue
/// type (both are final) lets the per-op calls inline, so dispatch is not
/// measured either. Returns events per wall-second.
template <class Queue>
double hold_events_per_sec(Queue& q, std::size_t population,
                           std::uint64_t ops, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> gaps(1u << 20);
  for (double& g : gaps) g = rng.exponential(1.0);
  const std::size_t gap_mask = gaps.size() - 1;

  simkit::EventId id = 1;
  for (std::size_t i = 0; i < population; ++i)
    q.push({gaps[i & gap_mask], id++});
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const simkit::QueueEntry e = *q.peek();
    q.pop();
    q.push({e.t + gaps[id & gap_mask], id});
    ++id;
  }
  const double dt = seconds_since(start);
  while (!q.empty()) q.pop();
  return static_cast<double>(ops) / dt;
}

struct SimHold {
  double events_per_sec = 0.0;
  double sim_s_per_wall_s = 0.0;
};

/// Whole-simulator hold model: one self-rescheduling timer per VM (the
/// heartbeat/epoch-timer shape of a real run), `ops` events executed.
SimHold sim_hold(simkit::QueueKind kind, std::size_t population,
                 std::uint64_t ops, std::uint64_t seed) {
  simkit::SimulatorConfig config;
  config.queue = kind;
  simkit::Simulator sim(config);
  Rng rng(seed);
  // Each timer reschedules itself forever; run() is bounded by ops.
  std::function<void(std::size_t)> tick = [&](std::size_t timer) {
    sim.after(rng.exponential(1.0), [&tick, timer] { tick(timer); });
  };
  for (std::size_t i = 0; i < population; ++i)
    sim.at(rng.uniform(0.0, 1.0), [&tick, i] { tick(i); });
  const auto start = Clock::now();
  sim.run(ops);
  const double dt = seconds_since(start);
  SimHold out;
  out.events_per_sec = static_cast<double>(sim.executed()) / dt;
  out.sim_s_per_wall_s = sim.now() / dt;
  return out;
}

// --- 2. placement -----------------------------------------------------------

struct SpreadStats {
  double worst_max = 0.0;   // worst per-survivor load over sampled failures
  double mean = 0.0;        // mean load over survivors, averaged over sample
  double ratio = 0.0;       // worst_max / mean
  double build_ms = 0.0;    // plan build wall time
};

SpreadStats placement_spread(const cluster::ClusterManager& cluster,
                             core::PlannerConfig::Layout layout) {
  core::PlannerConfig config;
  config.group_size = kGroupSize;
  config.layout = layout;
  const auto start = Clock::now();
  const core::GroupPlan plan = core::GroupPlanner(config).plan(cluster);
  SpreadStats stats;
  stats.build_ms = seconds_since(start) * 1e3;

  // vm -> node once; the per-victim scans stay cheap at 100k VMs.
  std::map<vm::VmId, cluster::NodeId> home;
  for (cluster::NodeId nid : cluster.alive_nodes())
    for (vm::VmId vmid : cluster.node(nid).hypervisor().vm_ids())
      home[vmid] = nid;

  const auto alive = cluster.alive_nodes();
  const std::size_t survivors = alive.size() - 1;
  Rng rng(7);
  double mean_sum = 0.0;
  for (std::size_t s = 0; s < kSpreadSample; ++s) {
    const cluster::NodeId victim = alive[rng.uniform_u64(alive.size())];
    std::map<cluster::NodeId, std::size_t> load;
    std::size_t total = 0;
    for (const auto& g : plan.groups) {
      bool hit = false;
      for (vm::VmId m : g.members)
        if (home[m] == victim) hit = true;
      if (!hit) continue;
      for (vm::VmId m : g.members) {
        if (home[m] == victim) continue;
        ++load[home[m]];
        ++total;
      }
    }
    for (const auto& [node, n] : load)
      stats.worst_max = std::max(stats.worst_max, static_cast<double>(n));
    mean_sum += static_cast<double>(total) / static_cast<double>(survivors);
  }
  stats.mean = mean_sum / kSpreadSample;
  stats.ratio = stats.mean > 0.0 ? stats.worst_max / stats.mean : 0.0;
  return stats;
}

// --- 2b. declustered rebuild drive ------------------------------------------

/// End-to-end check of the plan-level spread claim: seed a committed DVDC
/// cut over the Declustered layout (checkpoints in every node store plus
/// one encoded parity stripe per group — byte-identical to what an epoch
/// commit leaves behind, pinned by tests/delta_abort_test.cpp), then kill
/// sampled nodes and run REAL recoveries: survivor streams over the
/// fabric, leader decode, forwards to replacement holders. Every byte a
/// survivor serves is counted by `recovery.served_bytes{node=N}`; the
/// drive asserts those bytes equal the plan-derived prediction for every
/// survivor of every sampled failure, and that the per-survivor unit
/// spread obeys the decluster_test concentration bound
/// (max <= ceil(3 * mean-over-loaded) + 1).
struct RebuildDriveStats {
  std::size_t victims = 0;
  std::size_t groups_touched = 0;
  double bytes_served = 0.0;      // total over all sampled recoveries
  double worst_units = 0.0;       // max per-survivor units, any victim
  double worst_ratio = 0.0;       // worst max/mean-over-loaded per victim
  bool exact = true;              // measured == plan-derived, everywhere
  bool spread_ok = true;
  double drive_ms = 0.0;
};

constexpr std::size_t kRebuildVictims = 6;

RebuildDriveStats rebuild_drive(std::size_t nodes) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(3));
  for (std::size_t n = 0; n < nodes; ++n) cluster.add_node();
  for (std::size_t n = 0; n < nodes; ++n)
    for (std::size_t v = 0; v < kVmsPerNode; ++v)
      cluster.boot_vm(static_cast<cluster::NodeId>(n), 256, 1,
                      std::make_unique<vm::IdleWorkload>());

  core::PlannerConfig pc;
  pc.group_size = kGroupSize;
  pc.layout = core::PlannerConfig::Layout::Declustered;
  const auto placed = core::PlacedPlan::make(
      core::GroupPlanner(pc).plan(cluster), cluster,
      core::ParityScheme::Raid5);

  core::DvdcState state;
  const checkpoint::Epoch epoch = 1;
  for (std::size_t gi = 0; gi < placed.plan.groups.size(); ++gi) {
    const auto& g = placed.plan.groups[gi];
    std::vector<parity::Block> payloads;
    std::vector<parity::BlockView> views;
    Bytes block_size = 0;
    for (vm::VmId m : g.members) {
      const auto loc = cluster.locate(m);
      auto& machine = cluster.node(*loc).hypervisor().get(m);
      payloads.push_back(machine.image().flatten());
      block_size = std::max<Bytes>(block_size, payloads.back().size());
      checkpoint::Checkpoint cp;
      cp.vm = m;
      cp.epoch = epoch;
      cp.page_size = machine.image().page_size();
      cp.payload = payloads.back();
      state.node_store(*loc).put(std::move(cp));
      state.register_vm(m, core::VmInfo{machine.name(),
                                        machine.image().page_size(),
                                        machine.image().page_count()});
    }
    for (auto& p : payloads) {
      p.resize(block_size);
      views.emplace_back(p);
    }
    auto codec =
        core::make_codec(core::ParityScheme::Raid5, g.members.size());
    core::DvdcState::ParityRecord record;
    record.epoch = epoch;
    record.scheme = core::ParityScheme::Raid5;
    record.members = g.members;
    record.holders = placed.holders[gi];
    record.blocks = codec->encode(views);
    record.block_size = block_size;
    state.set_parity(g.id, std::move(record));
  }
  state.set_committed_epoch(epoch);

  core::RecoveryManager recovery(
      sim, cluster, state,
      [](vm::VmId) -> std::unique_ptr<vm::Workload> {
        return std::make_unique<vm::IdleWorkload>();
      },
      core::RecoveryConfig{});

  auto& metrics = sim.telemetry().metrics();
  const auto served = [&](cluster::NodeId n) {
    return metrics.value("recovery.served_bytes",
                         telemetry::Labels{{"node", std::to_string(n)}});
  };

  RebuildDriveStats out;
  Rng rng(17);
  const auto start = Clock::now();
  for (std::size_t v = 0; v < kRebuildVictims; ++v) {
    // A victim must actually host VMs (a previously-repaired node may sit
    // empty until recovery re-targets it).
    const auto alive = cluster.alive_nodes();
    cluster::NodeId victim = alive[rng.uniform_u64(alive.size())];
    while (cluster.node(victim).hypervisor().vm_count() == 0)
      victim = alive[rng.uniform_u64(alive.size())];

    // Plan-derived prediction, mirroring the recovery's inbound assembly:
    // a group that lost a member is rebuilt from every surviving member
    // plus every surviving parity holder (one block each); a group that
    // lost only its holder is re-encoded from all of its members.
    std::map<cluster::NodeId, double> expect_units;
    for (const auto& g : placed.plan.groups) {
      const auto* record = state.parity(g.id);
      bool member_lost = false;
      std::vector<cluster::NodeId> member_nodes;
      for (vm::VmId m : g.members) {
        const auto loc = cluster.locate(m);
        if (*loc == victim)
          member_lost = true;
        else
          member_nodes.push_back(*loc);
      }
      bool holder_lost = false;
      for (cluster::NodeId h : record->holders)
        if (h == victim) holder_lost = true;
      if (member_lost) {
        ++out.groups_touched;
        for (cluster::NodeId n : member_nodes) ++expect_units[n];
        for (cluster::NodeId h : record->holders)
          if (h != victim) ++expect_units[h];
      } else if (holder_lost) {
        ++out.groups_touched;
        for (cluster::NodeId n : member_nodes) ++expect_units[n];
      }
    }

    std::map<cluster::NodeId, double> before;
    for (cluster::NodeId n : alive) before[n] = served(n);
    const auto lost = cluster.node(victim).hypervisor().vm_ids();
    cluster.kill_node(victim);
    state.drop_node(victim);
    cluster.revive_node(victim);
    bool ok = false;
    recovery.recover(placed, lost,
                     [&](const core::RecoveryStats& s) { ok = s.success; });
    sim.run();
    if (!ok) {
      out.exact = false;
      break;
    }

    // Exactness: every survivor served exactly the plan-predicted bytes.
    const Bytes block_size = 256;
    double max_units = 0.0, total_units = 0.0;
    std::size_t loaded = 0;
    for (cluster::NodeId n : alive) {
      if (n == victim) continue;
      const double got = served(n) - before[n];
      const auto it = expect_units.find(n);
      const double want =
          (it == expect_units.end() ? 0.0 : it->second) *
          static_cast<double>(block_size);
      if (got != want) out.exact = false;
      const double units = got / static_cast<double>(block_size);
      out.bytes_served += got;
      max_units = std::max(max_units, units);
      total_units += units;
      if (units > 0.0) ++loaded;
    }
    // Spread: the decluster_test concentration bound, now on bytes that
    // actually crossed the fabric.
    const double mean = loaded > 0 ? total_units / loaded : 0.0;
    const double bound = std::ceil(3.0 * mean) + 1.0;
    if (max_units > bound) out.spread_ok = false;
    out.worst_units = std::max(out.worst_units, max_units);
    if (mean > 0.0)
      out.worst_ratio = std::max(out.worst_ratio, max_units / mean);
    ++out.victims;
  }
  out.drive_ms = seconds_since(start) * 1e3;
  return out;
}

// --- 3. flow solver ---------------------------------------------------------

struct SolverStats {
  std::uint64_t ops = 0;
  std::uint64_t incremental_flows_solved = 0;
  std::uint64_t full_flows_solved = 0;  // measured or arithmetic
  bool full_measured = false;
  double reduction = 0.0;
};

/// Group-local point-to-point churn (the checkpoint-exchange shape:
/// traffic stays within a group, so flow/port components stay small):
/// start 2 flows per node, then cancel them all. Incremental cost is the
/// touched components; the full solver re-solves every active flow per op.
SolverStats solver_churn(std::size_t nodes, bool measure_full) {
  SolverStats stats;
  const std::size_t flows = 2 * nodes;
  stats.ops = 2 * flows;
  const std::size_t kLocality = 16;  // nodes per exchange neighbourhood

  auto run = [&](bool incremental) -> std::uint64_t {
    simkit::Simulator sim;
    net::FlowNetwork fn(sim);
    fn.set_incremental_solver(incremental);
    Rng rng(11);
    std::vector<net::PortId> ports;
    for (std::size_t i = 0; i < 2 * nodes; ++i)
      ports.push_back(fn.add_port(1e9));
    std::vector<net::FlowId> live;
    const std::size_t hoods = std::max<std::size_t>(1, nodes / kLocality);
    for (std::size_t i = 0; i < flows; ++i) {
      const std::size_t base = rng.uniform_u64(hoods) * kLocality;
      const net::PortId tx = ports[base + rng.uniform_u64(kLocality)];
      const net::PortId rx =
          ports[nodes + base + rng.uniform_u64(kLocality)];
      live.push_back(fn.start_flow({tx, rx}, 1u << 20, [] {}));
    }
    for (net::FlowId f : live) fn.cancel_flow(f);
    return fn.solver_flows_solved();
  };

  stats.incremental_flows_solved = run(true);
  if (measure_full) {
    stats.full_flows_solved = run(false);
    stats.full_measured = true;
  } else {
    // Full solves all active flows per op: Sum over starts (1..F) plus
    // Sum over cancels (F-1..0) = F^2.
    stats.full_flows_solved =
        static_cast<std::uint64_t>(flows) * static_cast<std::uint64_t>(flows);
  }
  stats.reduction = stats.incremental_flows_solved > 0
                        ? static_cast<double>(stats.full_flows_solved) /
                              static_cast<double>(stats.incremental_flows_solved)
                        : 0.0;
  return stats;
}

// --- 4. election availability ------------------------------------------------
//
// Replicated-control-plane failover at scale: kill the seated leader and
// measure SIM time until the next control record is quorum-committed under
// a successor. The replica set is fixed (3) regardless of cluster size, so
// the claim being gated is that availability does not degrade with node
// count — and, because the measurement is simulated time over a
// deterministic plane, an ABSOLUTE ceiling is stable across CI machines.

struct ElectionStats {
  std::size_t nodes = 0;
  std::size_t trials = 0;
  double failover_min_s = 0.0;
  double failover_mean_s = 0.0;
  double failover_max_s = 0.0;
  std::uint64_t elections = 0;
  bool safety_ok = true;
};

/// One kill-the-leader trial. Returns sim-seconds from the kill to the
/// first record committed by the successor's quorum (< 0: never happened).
double election_failover_trial(std::size_t nodes, std::uint64_t seed,
                               std::uint64_t& elections, bool& safety_ok) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(7));
  for (std::size_t n = 0; n < nodes; ++n) cluster.add_node();
  controlplane::ControlPlane plane(sim, cluster,
                                   controlplane::ControlPlaneConfig{},
                                   Rng(seed));
  plane.start();

  // Settle: epoch 1 committed under the bootstrap leader.
  controlplane::ControlEntry cut;
  cut.kind = controlplane::ControlEntry::Kind::kEpochCut;
  cut.value = 1;
  controlplane::ControlEntry commit = cut;
  commit.kind = controlplane::ControlEntry::Kind::kEpochCommit;
  if (!plane.append(cut) || !plane.append(commit)) return -1.0;
  sim.run_until(1.0);
  if (plane.leader_view() == nullptr ||
      plane.leader_view()->committed_epoch != 1) {
    return -1.0;
  }

  const double kill_time = sim.now();
  cluster.kill_node(0);
  plane.on_node_death(0);

  // The interrupted epoch is re-driven through whoever wins: the commit
  // callback stamps the quorum-commit time.
  double committed_at = -1.0;
  plane.await_leader([&](controlplane::NodeId) {
    controlplane::ControlEntry cut2 = cut;
    cut2.value = 2;
    controlplane::ControlEntry commit2 = commit;
    commit2.value = 2;
    plane.append(cut2);
    plane.append(commit2, [&](bool ok) {
      if (ok && committed_at < 0.0) committed_at = sim.now();
    });
  });
  sim.run_until(kill_time + 60.0);

  elections += plane.elections();
  safety_ok = safety_ok && plane.election_safety_ok() &&
              plane.epoch_sequence_ok() && plane.logs_consistent();
  plane.stop();
  return committed_at < 0.0 ? -1.0 : committed_at - kill_time;
}

ElectionStats election_availability(std::size_t nodes, std::size_t trials) {
  ElectionStats stats;
  stats.nodes = nodes;
  stats.trials = trials;
  stats.failover_min_s = 1e9;
  double sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const double failover = election_failover_trial(
        nodes, 5000 + 17 * t, stats.elections, stats.safety_ok);
    if (failover < 0.0) {
      stats.safety_ok = false;  // a trial that never re-committed is a fail
      continue;
    }
    stats.failover_min_s = std::min(stats.failover_min_s, failover);
    stats.failover_max_s = std::max(stats.failover_max_s, failover);
    sum += failover;
  }
  stats.failover_mean_s = sum / static_cast<double>(trials);
  std::printf(
      "election:    %5zu nodes  failover %.3f/%.3f/%.3f s (min/mean/max "
      "over %zu leader kills)  %llu elections  safety %s\n",
      stats.nodes, stats.failover_min_s, stats.failover_mean_s,
      stats.failover_max_s, stats.trials,
      static_cast<unsigned long long>(stats.elections),
      stats.safety_ok ? "ok" : "VIOLATED");
  return stats;
}

// --- driver -----------------------------------------------------------------

struct Row {
  std::size_t nodes = 0;
  std::size_t vms = 0;
  double heap_eps = 0.0;
  double cal_eps = 0.0;
  double speedup = 0.0;
  SimHold sim_heap;
  SimHold sim_cal;
  SpreadStats ortho;
  SpreadStats decl;
  RebuildDriveStats rebuild;
  SolverStats solver;
};

Row run_scale(std::size_t nodes, std::uint64_t events) {
  Row row;
  row.nodes = nodes;
  row.vms = nodes * kVmsPerNode;
  std::printf("\n-- scale: %zu nodes, %zu VMs --\n", row.nodes, row.vms);

  {
    // Best of three interleaved reps per queue: one slow rep (frequency
    // ramp, a noisy neighbour) must not decide the ratio either way.
    for (int rep = 0; rep < 3; ++rep) {
      simkit::BinaryHeapQueue heap;
      simkit::CalendarQueue calendar;
      row.heap_eps =
          std::max(row.heap_eps, hold_events_per_sec(heap, row.vms, events, 42));
      row.cal_eps = std::max(row.cal_eps,
                             hold_events_per_sec(calendar, row.vms, events, 42));
    }
    row.speedup = row.cal_eps / row.heap_eps;
    std::printf("queue hold:  heap %.2fM ev/s  calendar %.2fM ev/s  (%.2fx)\n",
                row.heap_eps / 1e6, row.cal_eps / 1e6, row.speedup);
  }
  {
    row.sim_heap = sim_hold(simkit::QueueKind::BinaryHeap, row.vms,
                            events / 2, 42);
    row.sim_cal = sim_hold(simkit::QueueKind::Calendar, row.vms,
                           events / 2, 42);
    std::printf(
        "sim hold:    heap %.2fM ev/s  calendar %.2fM ev/s  "
        "(%.1f sim-s/wall-s on calendar)\n",
        row.sim_heap.events_per_sec / 1e6, row.sim_cal.events_per_sec / 1e6,
        row.sim_cal.sim_s_per_wall_s);
  }
  {
    simkit::Simulator sim;
    cluster::ClusterManager cluster(sim, Rng(1));
    for (std::size_t n = 0; n < nodes; ++n) cluster.add_node();
    for (std::size_t n = 0; n < nodes; ++n)
      for (std::size_t v = 0; v < kVmsPerNode; ++v)
        cluster.boot_vm(static_cast<cluster::NodeId>(n), 256, 1,
                        std::make_unique<vm::IdleWorkload>());
    row.ortho = placement_spread(cluster,
                                 core::PlannerConfig::Layout::Orthogonal);
    row.decl = placement_spread(cluster,
                                core::PlannerConfig::Layout::Declustered);
    std::printf(
        "rebuild:     orthogonal max %.0f (x%.1f of mean)  "
        "declustered max %.0f (x%.1f of mean)  [build %.0f ms]\n",
        row.ortho.worst_max, row.ortho.ratio, row.decl.worst_max,
        row.decl.ratio, row.decl.build_ms);
  }
  {
    row.rebuild = rebuild_drive(nodes);
    std::printf(
        "rebuild drive: %zu victims, %zu groups, %s served  "
        "max %.0f units (x%.1f of loaded mean)  exact=%s spread=%s "
        "[%.0f ms]\n",
        row.rebuild.victims, row.rebuild.groups_touched,
        bench::fmt_bytes(static_cast<Bytes>(row.rebuild.bytes_served))
            .c_str(),
        row.rebuild.worst_units, row.rebuild.worst_ratio,
        row.rebuild.exact ? "yes" : "NO",
        row.rebuild.spread_ok ? "yes" : "NO", row.rebuild.drive_ms);
  }
  {
    row.solver = solver_churn(nodes, /*measure_full=*/nodes <= 1000);
    std::printf(
        "solver:      incremental %llu flows solved vs full %llu%s "
        "(%.0fx less work)\n",
        static_cast<unsigned long long>(row.solver.incremental_flows_solved),
        static_cast<unsigned long long>(row.solver.full_flows_solved),
        row.solver.full_measured ? "" : " (arithmetic)",
        row.solver.reduction);
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const std::vector<ElectionStats>& election,
                double election_ceiling_s, bool election_pass,
                std::uint64_t events, double gate_speedup, bool gate_applies,
                bool gate_pass) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"scale_sweep\",\n");
  std::fprintf(out, "  \"events_per_run\": %llu,\n",
               static_cast<unsigned long long>(events));
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"nodes\": %zu,\n      \"vms\": %zu,\n", r.nodes,
                 r.vms);
    std::fprintf(out,
                 "      \"queue\": {\"heap_events_per_s\": %.0f, "
                 "\"calendar_events_per_s\": %.0f, \"speedup\": %.3f},\n",
                 r.heap_eps, r.cal_eps, r.speedup);
    std::fprintf(out,
                 "      \"sim\": {\"heap_events_per_s\": %.0f, "
                 "\"calendar_events_per_s\": %.0f, "
                 "\"sim_s_per_wall_s\": %.2f},\n",
                 r.sim_heap.events_per_sec, r.sim_cal.events_per_sec,
                 r.sim_cal.sim_s_per_wall_s);
    std::fprintf(
        out,
        "      \"rebuild_spread\": {\n"
        "        \"orthogonal\": {\"max\": %.0f, \"mean\": %.2f, "
        "\"ratio\": %.2f, \"build_ms\": %.1f},\n"
        "        \"declustered\": {\"max\": %.0f, \"mean\": %.2f, "
        "\"ratio\": %.2f, \"build_ms\": %.1f}\n      },\n",
        r.ortho.worst_max, r.ortho.mean, r.ortho.ratio, r.ortho.build_ms,
        r.decl.worst_max, r.decl.mean, r.decl.ratio, r.decl.build_ms);
    std::fprintf(
        out,
        "      \"rebuild_drive\": {\"victims\": %zu, \"groups\": %zu, "
        "\"bytes_served\": %.0f, \"max_units\": %.0f, "
        "\"max_over_loaded_mean\": %.2f, \"exact\": %s, "
        "\"spread_ok\": %s, \"drive_ms\": %.1f},\n",
        r.rebuild.victims, r.rebuild.groups_touched, r.rebuild.bytes_served,
        r.rebuild.worst_units, r.rebuild.worst_ratio,
        r.rebuild.exact ? "true" : "false",
        r.rebuild.spread_ok ? "true" : "false", r.rebuild.drive_ms);
    std::fprintf(
        out,
        "      \"solver\": {\"ops\": %llu, "
        "\"incremental_flows_solved\": %llu, \"full_flows_solved\": %llu, "
        "\"full_measured\": %s, \"reduction\": %.1f}\n",
        static_cast<unsigned long long>(r.solver.ops),
        static_cast<unsigned long long>(r.solver.incremental_flows_solved),
        static_cast<unsigned long long>(r.solver.full_flows_solved),
        r.solver.full_measured ? "true" : "false", r.solver.reduction);
    std::fprintf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"election\": {\n    \"rows\": [\n");
  for (std::size_t i = 0; i < election.size(); ++i) {
    const ElectionStats& e = election[i];
    std::fprintf(
        out,
        "      {\"nodes\": %zu, \"trials\": %zu, \"failover_min_s\": %.4f, "
        "\"failover_mean_s\": %.4f, \"failover_max_s\": %.4f, "
        "\"elections\": %llu, \"safety_ok\": %s}%s\n",
        e.nodes, e.trials, e.failover_min_s, e.failover_mean_s,
        e.failover_max_s, static_cast<unsigned long long>(e.elections),
        e.safety_ok ? "true" : "false",
        i + 1 < election.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"ceiling_s\": %.2f,\n    \"pass\": %s\n  },\n",
               election_ceiling_s, election_pass ? "true" : "false");
  std::fprintf(out,
               "  \"gate\": {\"speedup_at_largest\": %.3f, \"required\": 3.0, "
               "\"applies\": %s, \"pass\": %s}\n}\n",
               gate_speedup, gate_applies ? "true" : "false",
               gate_pass ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace vdc

int main(int argc, char** argv) {
  using namespace vdc;
  std::string json_path = "BENCH_scale.json";
  std::vector<std::size_t> node_scales{1000, 10000};
  std::uint64_t events = 2000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--events=", 9) == 0) {
      events = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      node_scales.clear();
      const char* p = argv[i] + 8;
      while (*p) {
        node_scales.push_back(std::strtoull(p, const_cast<char**>(&p), 10));
        if (*p == ',') ++p;
      }
    }
  }

  bench::banner("Scale sweep: calendar queue, declustered placement, "
                "incremental flow solver",
                "hold-model events/s, rebuild-load spread, solver work");

  std::vector<Row> rows;
  for (std::size_t n : node_scales) rows.push_back(run_scale(n, events));

  // Control-plane failover runs at fixed 200/1k/10k scales regardless of
  // --nodes: the trials are pure sim time over a bare plane, so even the
  // 10k row is cheap enough for every CI invocation.
  std::printf("\n-- election availability (leader kill -> next commit) --\n");
  constexpr double kElectionCeilingS = 2.0;
  std::vector<ElectionStats> election;
  for (std::size_t n : {std::size_t{200}, std::size_t{1000},
                        std::size_t{10000}}) {
    election.push_back(election_availability(n, /*trials=*/5));
  }
  bool election_pass = true;
  for (const ElectionStats& e : election)
    election_pass = election_pass && e.safety_ok &&
                    e.failover_max_s <= kElectionCeilingS;

  // The >= 3x events/s gate applies at 10k-node scale: that is where the
  // heap's log(pending) factor bites.
  const Row& largest = rows.back();
  const bool gate_applies = largest.nodes >= 10000;
  const bool gate_pass = !gate_applies || largest.speedup >= 3.0;
  write_json(json_path, rows, election, kElectionCeilingS, election_pass,
             events, largest.speedup, gate_applies, gate_pass);

  int rc = 0;
  if (!election_pass) {
    std::fprintf(stderr,
                 "FAIL: control-plane failover exceeded %.1f s (or a safety "
                 "invariant broke) after a leader kill\n",
                 kElectionCeilingS);
    rc = 1;
  }
  if (!gate_pass) {
    std::fprintf(stderr,
                 "FAIL: calendar queue %.2fx heap at %zu nodes (need 3x)\n",
                 largest.speedup, largest.nodes);
    rc = 1;
  }
  // The rebuild drive gates at EVERY scale: per-survivor served bytes must
  // equal the plan-derived prediction exactly, and the spread must obey
  // the decluster_test concentration bound.
  for (const Row& r : rows) {
    if (!r.rebuild.exact) {
      std::fprintf(stderr,
                   "FAIL: rebuild drive at %zu nodes: served bytes diverge "
                   "from the plan-level prediction\n",
                   r.nodes);
      rc = 1;
    }
    if (!r.rebuild.spread_ok) {
      std::fprintf(stderr,
                   "FAIL: rebuild drive at %zu nodes: per-survivor spread "
                   "exceeds ceil(3*mean)+1\n",
                   r.nodes);
      rc = 1;
    }
  }
  return rc;
}
