// ABL-INT — sensitivity of the optimal checkpoint interval and achievable
// expected-time ratio to the failure rate and the per-checkpoint overhead
// (Section II-B's "how often should one checkpoint?" on the Section V
// model). Includes Young's first-order approximation as a cross-check.

#include <cstdio>

#include "bench_util.hpp"
#include "model/analytic.hpp"
#include "model/overhead.hpp"

using namespace vdc;

int main() {
  bench::banner("ABL-INT  optimal interval sensitivity",
                "T = 2 days, T_r = 60 s; Section V model");

  std::printf("--- vs. MTBF (T_ov = 40 ms, the DVDC COW overhead) ---------\n");
  std::printf("%10s  %14s  %14s  %10s\n", "MTBF", "Tint*", "Young sqrt",
              "ratio");
  for (double mtbf : {hours(12), hours(6), hours(3), hours(1),
                      minutes(30)}) {
    const double lambda = 1.0 / mtbf;
    const auto opt = model::optimal_interval(lambda, days(2), 0.040, 60.0);
    std::printf("%10s  %14s  %14s  %10.4f\n", bench::fmt_time(mtbf).c_str(),
                bench::fmt_time(opt.interval).c_str(),
                bench::fmt_time(model::young_interval(lambda, 0.040)).c_str(),
                opt.ratio);
  }

  std::printf("\n--- vs. overhead (MTBF = 3 h) ------------------------------\n");
  std::printf("%12s  %14s  %14s  %10s\n", "T_ov", "Tint*", "Young sqrt",
              "ratio");
  const double lambda = 9.26e-5;
  for (double tov : {0.040, 1.0, 10.0, 60.0, 156.0, 600.0}) {
    const auto opt = model::optimal_interval(lambda, days(2), tov, 60.0);
    std::printf("%12s  %14s  %14s  %10.4f\n", bench::fmt_time(tov).c_str(),
                bench::fmt_time(opt.interval).c_str(),
                bench::fmt_time(model::young_interval(lambda, tov)).c_str(),
                opt.ratio);
  }

  std::printf("\n--- the 2015 wall (Schroeder & Gibson, cited in the intro) -\n");
  std::printf("When MTBF approaches the checkpoint overhead, even the\n"
              "optimal interval cannot save the job:\n");
  std::printf("%10s  %12s  %10s\n", "MTBF", "T_ov", "ratio");
  for (double mtbf : {hours(1), minutes(20), minutes(10), minutes(5)}) {
    const double tov = 156.0;  // the NAS-bound disk-full overhead
    const auto opt = model::optimal_interval(1.0 / mtbf, days(2), tov, 60.0);
    std::printf("%10s  %12s  %10.2f\n", bench::fmt_time(mtbf).c_str(),
                bench::fmt_time(tov).c_str(), opt.ratio);
  }
  std::printf("\nDiskless checkpointing moves T_ov from minutes to the 40 ms\n"
              "quiesce, pushing that wall out by orders of magnitude.\n");
  return 0;
}
