// CLAIM-PAR — Section IV-B: "the parallelization of the parity calculation
// should relieve the CPU burden by a factor linear in the amount of
// machines in the cluster."
//
// We run one full-exchange DVDC epoch on clusters of growing size with a
// fixed per-node guest footprint, comparing (a) the fully distributed
// Fig. 4 layout against (b) a dedicated-checkpoint-node layout where one
// spare node absorbs every group's parity. Reported: worst per-node XOR
// bytes and the epoch latency. Distributed parity keeps both flat as the
// cluster grows; the dedicated node's burden grows linearly.

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

struct EpochProbe {
  SimTime latency = 0;
  Bytes total_xor = 0;
  Bytes worst_holder_xor = 0;
};

EpochProbe run_epoch(std::uint32_t compute_nodes, std::uint32_t spare_nodes,
                     std::uint32_t vms_per_node, std::uint32_t k) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(99));
  ClusterConfig cc;
  cc.page_size = kib(4);
  cc.pages_per_vm = 32;
  cc.write_rate = 0.0;
  auto workloads = make_workload_factory(cc);
  for (std::uint32_t n = 0; n < compute_nodes + spare_nodes; ++n)
    cluster.add_node();
  for (std::uint32_t n = 0; n < compute_nodes; ++n)
    for (std::uint32_t v = 0; v < vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

  DvdcState state;
  DvdcCoordinator coord(sim, cluster, state);
  PlannerConfig planner;
  planner.group_size = k;
  auto placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster),
                                 cluster, ParityScheme::Raid5);

  EpochProbe probe;
  coord.run_epoch(placed, 1, [&](const EpochStats& stats) {
    probe.latency = stats.latency;
    probe.total_xor = stats.bytes_xored;
  });
  sim.run();

  // Per-holder XOR burden from the plan (full exchange: every member's
  // whole image lands on its group's holder).
  std::map<cluster::NodeId, Bytes> per_holder;
  const Bytes image = cc.page_size * cc.pages_per_vm;
  for (std::size_t gi = 0; gi < placed.plan.groups.size(); ++gi)
    per_holder[placed.holders[gi][0]] +=
        image * placed.plan.groups[gi].members.size();
  for (const auto& [node, bytes] : per_holder)
    probe.worst_holder_xor = std::max(probe.worst_holder_xor, bytes);
  return probe;
}

}  // namespace

int main() {
  bench::banner("CLAIM-PAR  parity work distribution vs. cluster size",
                "fixed 3 VMs/node, groups of 3; full-exchange epoch, RAID-5");
  std::printf("%6s  %-22s %-22s %14s\n", "", "distributed (fig4)",
              "dedicated node (fig3)", "");
  std::printf("%6s  %10s %11s  %10s %11s  %14s\n", "nodes", "worst XOR",
              "epoch lat", "worst XOR", "epoch lat", "ded/dist XOR");
  for (std::uint32_t n : {4u, 6u, 8u, 12u, 16u}) {
    // Distributed: fixed groups of 3, parity spread via rotation over all
    // n nodes — per-node burden stays ~constant.
    const auto dist = run_epoch(n, 0, 3, 3);
    // Dedicated: groups span every compute node (k = n) so the single
    // spare absorbs all parity — its burden grows with the cluster.
    const auto dedicated = run_epoch(n, 1, 3, n);
    std::printf("%6u  %10s %11s  %10s %11s  %13.1fx\n", n,
                bench::fmt_bytes(dist.worst_holder_xor).c_str(),
                bench::fmt_time(dist.latency).c_str(),
                bench::fmt_bytes(dedicated.worst_holder_xor).c_str(),
                bench::fmt_time(dedicated.latency).c_str(),
                static_cast<double>(dedicated.worst_holder_xor) /
                    static_cast<double>(dist.worst_holder_xor));
  }
  std::printf("\nThe dedicated node's XOR burden grows ~linearly with the "
              "cluster; the distributed layout keeps the per-node burden "
              "constant (the paper's linear relief claim).\n");
  return 0;
}
