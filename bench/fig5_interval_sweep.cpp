// FIG5 — reproduces Figure 5 of the paper:
//
//   "Diskless Checkpointing vs. Normal Disk-full Checkpointing: we vary
//    the checkpointing interval (Tint) and calculate how the expected time
//    ratio changes. The X marks indicate minima, or optimal checkpoint
//    intervals for each method. [...] four physical machines and 12
//    virtual machines."  (lambda = 9.26e-5/s, T = 2 days, base 40 ms)
//
// The harness prints the full curve (expected-time ratio vs. interval for
// both schemes), the located minima, and the headline comparison the paper
// quotes: ~18% reduction in expected time to completion, diskless optimum
// within ~1% of the fault-free run. A Monte-Carlo column corroborates the
// closed form at each sampled interval.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "model/analytic.hpp"
#include "model/montecarlo.hpp"
#include "model/overhead.hpp"

using namespace vdc;

int main() {
  const model::Fig5Scenario fig5 = model::fig5_scenario();
  const auto df = model::diskfull_costs(fig5.shape, fig5.hw);
  const auto dl = model::diskless_costs(fig5.shape, fig5.hw, true);

  bench::banner(
      "FIG5  expected-time ratio vs. checkpoint interval",
      "4 nodes x 3 VMs (12 VMs, 4 GiB images), MTBF 3 h, T = 2 days");

  std::printf("scheme overheads (per checkpoint):\n");
  std::printf("  disk-full : T_ov = %-10s T_r = %s\n",
              bench::fmt_time(df.overhead).c_str(),
              bench::fmt_time(df.repair).c_str());
  std::printf("  diskless  : T_ov = %-10s T_r = %s   (latency %s)\n\n",
              bench::fmt_time(dl.overhead).c_str(),
              bench::fmt_time(dl.repair).c_str(),
              bench::fmt_time(dl.latency).c_str());

  std::printf("%12s  %14s  %14s  %14s\n", "Tint", "diskfull E/T",
              "diskless E/T", "diskless MC");
  // Log-spaced sweep from 1 minute to 12 hours.
  const double lo = std::log(60.0), hi = std::log(hours(12));
  Rng rng(2024);
  for (int i = 0; i <= 24; ++i) {
    const double interval = std::exp(lo + (hi - lo) * i / 24.0);
    const double r_df = model::expected_time_ratio(
        fig5.lambda, fig5.total_work, interval, df.overhead, df.repair);
    const double r_dl = model::expected_time_ratio(
        fig5.lambda, fig5.total_work, interval, dl.overhead, dl.repair);
    // Monte-Carlo corroboration of the diskless curve (cheap config).
    model::McConfig mc;
    mc.lambda = fig5.lambda;
    mc.total_work = fig5.total_work;
    mc.interval = interval;
    mc.overhead = dl.overhead;
    mc.repair = dl.repair;
    mc.trials = 300;
    const auto stats = model::simulate_completion_times(mc, rng.fork());
    std::printf("%12s  %14.4f  %14.4f  %11.4f+-%.3f\n",
                bench::fmt_time(interval).c_str(), r_df, r_dl,
                stats.mean() / fig5.total_work,
                stats.ci95_halfwidth() / fig5.total_work);
  }

  const auto opt_df = model::optimal_interval(fig5.lambda, fig5.total_work,
                                              df.overhead, df.repair);
  const auto opt_dl = model::optimal_interval(fig5.lambda, fig5.total_work,
                                              dl.overhead, dl.repair);
  std::printf("\nX marks (minima):\n");
  std::printf("  disk-full : Tint* = %-10s ratio = %.4f\n",
              bench::fmt_time(opt_df.interval).c_str(), opt_df.ratio);
  std::printf("  diskless  : Tint* = %-10s ratio = %.4f\n",
              bench::fmt_time(opt_dl.interval).c_str(), opt_dl.ratio);

  const double reduction = 1.0 - opt_dl.ratio / opt_df.ratio;
  std::printf("\nheadline (paper: ~18%% reduction, ~1%% overhead ratio):\n");
  std::printf("  expected-time reduction at optima : %.1f%%\n",
              reduction * 100.0);
  std::printf("  diskless overhead over fault-free : %.2f%%\n",
              (opt_dl.ratio - 1.0) * 100.0);
  std::printf("  disk-full overhead over fault-free: %.2f%%\n",
              (opt_df.ratio - 1.0) * 100.0);
  return 0;
}
