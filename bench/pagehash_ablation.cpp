// ABL-HASH — the paper's Section VII future work: "using page hashes to
// speed up live migration when similar VMs reside at the host
// destination."
//
// A VM is migrated to a host that already runs a clone which has diverged
// by X% of its pages. Plain stop-and-copy ships the whole image; the
// page-hash migrator ships a manifest plus only the diverged pages (each
// match byte-verified). We sweep divergence and report bytes and time.

#include <cstdio>

#include "bench_util.hpp"
#include "migration/pagehash.hpp"
#include "migration/precopy.hpp"
#include "vm/workload.hpp"

using namespace vdc;
using namespace vdc::migration;

namespace {

constexpr std::size_t kPages = 1024;  // 4 MiB guest
constexpr Bytes kPage = kib(4);

struct Result {
  Bytes plain_bytes = 0;
  SimTime plain_time = 0;
  Bytes dedup_bytes = 0;
  SimTime dedup_time = 0;
  std::size_t matched = 0;
};

Result run(double divergence) {
  Result result;

  for (int mode = 0; mode < 2; ++mode) {
    simkit::Simulator sim;
    net::Fabric fabric(sim, 50e-6);
    const auto src_host = fabric.add_host(mib_per_s(10), "src");
    const auto dst_host = fabric.add_host(mib_per_s(10), "dst");
    // Same RNG seed => the two hypervisors boot identical "clone" images.
    vm::Hypervisor src(Rng(1)), dst(Rng(1));
    src.create_vm(1, "migrant", kPage, kPages,
                  std::make_unique<vm::IdleWorkload>());
    dst.create_vm(2, "resident-clone", kPage, kPages,
                  std::make_unique<vm::IdleWorkload>());

    // Diverge the migrant from the resident clone.
    Rng rng(9);
    auto& image = src.get(1).image();
    const auto diverge = static_cast<std::size_t>(divergence * kPages);
    for (std::size_t i = 0; i < diverge; ++i) {
      std::vector<std::byte> w(32);
      for (auto& b : w) b = static_cast<std::byte>(rng.next());
      image.write(i, 0, w);
    }

    if (mode == 0) {
      StopAndCopyMigrator plain(sim, fabric);
      plain.migrate(1, src, src_host, dst, dst_host,
                    [&](const MigrationStats& s) {
                      result.plain_bytes = s.bytes_sent;
                      result.plain_time = s.total_time;
                    });
    } else {
      DedupMigrator dedup(sim, fabric);
      dedup.migrate(1, src, src_host, dst, dst_host,
                    [&](const DedupStats& s) {
                      result.dedup_bytes = s.bytes_sent;
                      result.dedup_time = s.total_time;
                      result.matched = s.pages_matched;
                    });
    }
    sim.run();
  }
  return result;
}

}  // namespace

int main() {
  bench::banner("ABL-HASH  page-hash dedup migration (paper Section VII)",
                "4 MiB guest to a host with a diverged clone; 10 MiB/s link");
  std::printf("%12s %10s %12s %10s %12s %10s\n", "divergence", "matched",
              "plain bytes", "plain t", "dedup bytes", "dedup t");
  for (double divergence : {0.0, 0.05, 0.25, 0.5, 0.75, 1.0}) {
    const Result r = run(divergence);
    std::printf("%11.0f%% %10zu %12s %10s %12s %10s\n", divergence * 100.0,
                r.matched,
                bench::fmt_bytes(static_cast<double>(r.plain_bytes)).c_str(),
                bench::fmt_time(r.plain_time).c_str(),
                bench::fmt_bytes(static_cast<double>(r.dedup_bytes)).c_str(),
                bench::fmt_time(r.dedup_time).c_str());
  }
  std::printf("\nAgainst an undiverged clone the migration collapses to a "
              "hash manifest; savings decay linearly with divergence and "
              "the manifest (8 B/page) is the only overhead at 100%%.\n");
  return 0;
}
