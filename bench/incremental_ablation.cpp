// ABL-INC — Section II-B.1 / IV-C: incremental capture plus compressed
// differences shrink what must cross the network, as a function of how
// fast and how locally the guest dirties memory.
//
// For each workload model and write rate we run three committed DVDC
// epochs and report the steady-state (3rd epoch) wire bytes for:
//   full      — whole images every epoch
//   dirty     — raw dirty pages (incremental, uncompressed)
//   xor+rle   — what the protocol actually ships

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

std::unique_ptr<vm::Workload> make_workload(const char* kind, double rate) {
  if (std::string(kind) == "uniform")
    return std::make_unique<vm::UniformWorkload>(rate);
  if (std::string(kind) == "hot-cold")
    return std::make_unique<vm::HotColdWorkload>(rate, 0.1, 0.9);
  return std::make_unique<vm::SequentialWorkload>(rate);
}

struct Probe {
  Bytes full = 0;
  Bytes dirty = 0;
  Bytes wire = 0;
};

Probe run(const char* kind, double rate, bool incremental) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(31));
  const Bytes page = kib(4);
  const std::size_t pages = 256;
  for (int n = 0; n < 4; ++n) cluster.add_node();
  for (int n = 0; n < 4; ++n)
    for (int v = 0; v < 3; ++v)
      cluster.boot_vm(n, page, pages, make_workload(kind, rate));

  DvdcState state;
  ProtocolConfig pc;
  pc.incremental = incremental;
  DvdcCoordinator coord(sim, cluster, state, pc);
  auto placed = PlacedPlan::make(GroupPlanner().plan(cluster), cluster,
                                 ParityScheme::Raid5);

  Probe probe;
  probe.full = 12ull * page * pages;
  for (checkpoint::Epoch e = 1; e <= 3; ++e) {
    cluster.advance_workloads(1.0);  // one second between epochs
    EpochStats stats;
    coord.run_epoch(placed, e, [&](const EpochStats& s) { stats = s; });
    sim.run();
    if (e == 3) {
      probe.dirty = stats.raw_dirty_bytes;
      probe.wire = stats.bytes_shipped;
    }
  }
  return probe;
}

}  // namespace

int main() {
  bench::banner(
      "ABL-INC  bytes shipped per epoch vs. workload and dirty rate",
      "12 VMs x 1 MiB, 1 s epochs; steady-state (3rd) epoch reported");

  std::printf("%-12s %10s  %10s  %10s  %10s  %8s\n", "workload", "writes/s",
              "full", "dirty pages", "xor+rle", "vs full");
  for (const char* kind : {"uniform", "hot-cold", "sequential"}) {
    for (double rate : {50.0, 500.0, 5000.0}) {
      const Probe probe = run(kind, rate, true);
      std::printf("%-12s %10.0f  %10s  %10s  %10s  %7.1f%%\n", kind, rate,
                  bench::fmt_bytes(static_cast<double>(probe.full)).c_str(),
                  bench::fmt_bytes(static_cast<double>(probe.dirty)).c_str(),
                  bench::fmt_bytes(static_cast<double>(probe.wire)).c_str(),
                  100.0 * static_cast<double>(probe.wire) /
                      static_cast<double>(probe.full));
    }
  }
  std::printf("\nLocality (hot-cold) keeps increments small even at high "
              "write rates; uniform writes at 5000/s approach the full-\n"
              "image cost — the regime where incremental checkpointing "
              "stops paying (Section II-B.1).\n");
  return 0;
}
