// ABL-RS — generalising the paper's parity scheme: XOR (m=1), RDP (m=2),
// and Reed-Solomon at m = 1..3. For each scheme we measure one full
// exchange epoch, one incremental epoch (where the code is linear), and
// the survivable simultaneous node failures — the cost ladder a deployer
// climbs for more fault tolerance.

#include <cstdio>

#include "bench_util.hpp"
#include "core/recovery.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

struct Probe {
  Bytes full_wire = 0;
  Bytes incr_wire = 0;
  SimTime epoch_latency = 0;
  Bytes parity_mem = 0;
  std::size_t survived = 0;  // max simultaneous node failures recovered
};

Probe run(ParityScheme scheme, std::size_t m) {
  constexpr std::uint32_t kNodes = 9, kVms = 1, kGroup = 4;
  Probe probe;

  // Part 1: epoch costs.
  {
    simkit::Simulator sim;
    cluster::ClusterManager cluster(sim, Rng(555));
    ClusterConfig cc;
    cc.page_size = kib(4);
    cc.pages_per_vm = 64;
    cc.write_rate = 200.0;
    auto workloads = make_workload_factory(cc);
    for (std::uint32_t n = 0; n < kNodes; ++n) cluster.add_node();
    for (std::uint32_t n = 0; n < kNodes; ++n)
      for (std::uint32_t v = 0; v < kVms; ++v)
        cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

    DvdcState state;
    ProtocolConfig pc;
    pc.scheme = scheme;
    pc.rs_parity = m;
    DvdcCoordinator coord(sim, cluster, state, pc);
    PlannerConfig planner;
    planner.group_size = kGroup;
    auto placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster),
                                   cluster, scheme, m);
    EpochStats s1, s2;
    coord.run_epoch(placed, 1, [&](const EpochStats& s) { s1 = s; });
    sim.run();
    cluster.advance_workloads(1.0);
    coord.run_epoch(placed, 2, [&](const EpochStats& s) { s2 = s; });
    sim.run();
    probe.full_wire = s1.bytes_shipped;
    probe.incr_wire = s2.bytes_shipped;
    probe.epoch_latency = s2.latency;
    for (const auto& group : placed.plan.groups) {
      const auto* record = state.parity(group.id);
      for (const auto& b : record->blocks) probe.parity_mem += b.size();
    }
  }

  // Part 2: survivable simultaneous member-node failures (empirical).
  for (std::size_t kill = 1; kill <= m + 1; ++kill) {
    simkit::Simulator sim;
    cluster::ClusterManager cluster(sim, Rng(777));
    ClusterConfig cc;
    cc.page_size = kib(4);
    cc.pages_per_vm = 16;
    cc.write_rate = 0.0;
    auto workloads = make_workload_factory(cc);
    for (std::uint32_t n = 0; n < kNodes; ++n) cluster.add_node();
    for (std::uint32_t n = 0; n < kNodes; ++n)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));
    DvdcState state;
    ProtocolConfig pc;
    pc.scheme = scheme;
    pc.rs_parity = m;
    DvdcCoordinator coord(sim, cluster, state, pc);
    RecoveryManager recovery(sim, cluster, state, workloads);
    PlannerConfig planner;
    planner.group_size = kGroup;
    auto placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster),
                                   cluster, scheme, m);
    coord.run_epoch(placed, 1, [](const EpochStats&) {});
    sim.run();

    // Kill `kill` member nodes of group 0 simultaneously.
    const auto& group = placed.plan.groups[0];
    if (kill > group.members.size()) break;
    std::vector<vm::VmId> lost;
    for (std::size_t i = 0; i < kill; ++i) {
      const auto node = *cluster.locate(group.members[i]);
      const auto vms = cluster.node(node).hypervisor().vm_ids();
      lost.insert(lost.end(), vms.begin(), vms.end());
      cluster.kill_node(node);
      state.drop_node(node);
    }
    bool ok = false;
    recovery.recover(placed, lost,
                     [&](const RecoveryStats& s) { ok = s.success; });
    sim.run();
    if (ok)
      probe.survived = kill;
    else
      break;
  }
  return probe;
}

}  // namespace

int main() {
  bench::banner("ABL-RS  the fault-tolerance cost ladder",
                "9 nodes x 1 VM (256 KiB), groups of 4; epoch 2 is "
                "incremental where the code allows");
  std::printf("%-12s %10s %10s %12s %10s %9s\n", "scheme", "full wire",
              "incr wire", "epoch lat", "parity", "survives");

  struct Row {
    const char* name;
    ParityScheme scheme;
    std::size_t m;
  } rows[] = {
      {"XOR (m=1)", ParityScheme::Raid5, 1},
      {"RS m=1", ParityScheme::Rs, 1},
      {"RDP (m=2)", ParityScheme::Rdp, 2},
      {"RS m=2", ParityScheme::Rs, 2},
      {"RS m=3", ParityScheme::Rs, 3},
  };
  for (const auto& row : rows) {
    const Probe probe = run(row.scheme, row.m);
    std::printf("%-12s %10s %10s %12s %10s %8zu\n", row.name,
                bench::fmt_bytes(static_cast<double>(probe.full_wire))
                    .c_str(),
                bench::fmt_bytes(static_cast<double>(probe.incr_wire))
                    .c_str(),
                bench::fmt_time(probe.epoch_latency).c_str(),
                bench::fmt_bytes(static_cast<double>(probe.parity_mem))
                    .c_str(),
                probe.survived);
  }
  std::printf("\nLinear codes (XOR, RS) keep incremental epochs cheap at "
              "any m; RDP pays full exchange for its second parity. Wire "
              "and memory grow ~linearly with m — fault tolerance is paid "
              "for exactly once per extra failure survived.\n");
  return 0;
}
