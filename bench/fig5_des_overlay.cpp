// FIG5-DES — closes the loop on Figure 5: the same interval sweep, but
// measured on the discrete-event system (hypervisors, fabric, failures,
// recovery — real bytes end to end) instead of the closed form. The
// cluster is scaled down (simulation-sized guests, MTBF 30 min, 2 h job)
// so each point runs in well under a second; the *shape* — a U with the
// diskless curve strictly below disk-full, and a diskless optimum at a
// much shorter interval — is what overlays the analytic Figure 5.

#include <cstdio>

#include "bench_util.hpp"
#include "core/baseline.hpp"
#include "core/runtime.hpp"
#include "model/analytic.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

ClusterConfig shape() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.page_size = kib(4);
  cc.pages_per_vm = 256;  // 1 MiB guests
  cc.write_rate = 200.0;
  cc.node_spec.nic_rate = mib_per_s(100);
  return cc;
}

double mean_ratio(SimTime interval, bool diskless, int seeds,
                  const bench::TraceSpec& trace) {
  const ClusterConfig cc = shape();
  DiskFullConfig df;
  df.nas.frontend_rate = mib_per_s(25);
  df.nas.array =
      storage::DiskSpec{mib_per_s(20), mib_per_s(25), milliseconds(5)};

  double sum = 0.0;
  int finished = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    JobConfig job;
    job.total_work = hours(2);
    job.interval = interval;
    job.lambda = 1.0 / minutes(30);
    job.seed = static_cast<std::uint64_t>(seed);
    JobRunner::BackendFactory factory;
    if (diskless) {
      factory = [cc](simkit::Simulator& sim,
                     cluster::ClusterManager& cluster,
                     Rng&) -> std::unique_ptr<CheckpointBackend> {
        return std::make_unique<DvdcBackend>(sim, cluster, ProtocolConfig{},
                                             RecoveryConfig{},
                                             make_workload_factory(cc));
      };
    } else {
      factory = [cc, df](simkit::Simulator& sim,
                         cluster::ClusterManager& cluster,
                         Rng&) -> std::unique_ptr<CheckpointBackend> {
        return std::make_unique<DiskFullBackend>(
            sim, cluster, make_workload_factory(cc), df);
      };
    }
    JobRunner runner(job, cc, factory);
    // One trace per point (first seed only) keeps the file count sane.
    if (seed == 1) {
      char label[64];
      std::snprintf(label, sizeof label, "%s-%ds",
                    diskless ? "dvdc" : "diskfull",
                    static_cast<int>(interval));
      trace.attach(runner.sim(), label);
    }
    const RunResult r = runner.run();
    if (seed == 1 && trace.enabled()) runner.sim().telemetry().flush();
    if (r.finished) {
      sum += r.time_ratio;
      ++finished;
    }
  }
  return finished ? sum / finished : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto trace = bench::TraceSpec::from_args(argc, argv);
  bench::banner("FIG5-DES  the Figure 5 sweep on the discrete-event system",
                "4x3 cluster, 1 MiB guests, MTBF 30 min, 2 h job; mean of "
                "3 seeds per point (real bytes, real recovery)");
  std::printf("%12s  %14s  %14s\n", "Tint", "diskfull E/T", "DVDC E/T");
  double best_df = 1e9, best_dl = 1e9;
  for (SimTime interval : {seconds(30), minutes(2), minutes(5),
                           minutes(10), minutes(20), minutes(40)}) {
    const double r_df = mean_ratio(interval, false, 3, trace);
    const double r_dl = mean_ratio(interval, true, 3, trace);
    best_df = std::min(best_df, r_df);
    best_dl = std::min(best_dl, r_dl);
    std::printf("%12s  %14.4f  %14.4f\n",
                bench::fmt_time(interval).c_str(), r_df, r_dl);
  }
  std::printf("\nmeasured minima: diskfull %.4f, DVDC %.4f "
              "(reduction %.1f%%)\n",
              best_df, best_dl, (1.0 - best_dl / best_df) * 100.0);
  std::printf("Same U-shape and ordering the analytic Figure 5 predicts, "
              "now from the full system.\n");
  return 0;
}
