// ABL-RDP — single XOR parity (the paper's scheme) vs. the RDP
// double-erasure extension it cites (Wang et al. / Corbett et al.):
//
//   * checkpoint cost: RDP ships every image to two holders and cannot use
//     incremental deltas here, so its epochs are strictly more expensive;
//   * survivability: RAID-5 DVDC dies on a correlated double-node failure
//     inside one group; RDP reconstructs.
//
// Both sides are measured on the DES with real bytes.

#include <cstdio>

#include "bench_util.hpp"
#include "core/recovery.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(77)};
  DvdcState state;
  std::unique_ptr<DvdcCoordinator> coord;
  std::unique_ptr<RecoveryManager> recovery;
  std::optional<PlacedPlan> placed;
  WorkloadFactory workloads;

  explicit Rig(ParityScheme scheme) {
    ClusterConfig cc;
    cc.page_size = kib(4);
    cc.pages_per_vm = 64;
    cc.write_rate = 200.0;
    workloads = make_workload_factory(cc);
    for (int n = 0; n < 6; ++n) cluster.add_node();
    for (int n = 0; n < 6; ++n)
      for (int v = 0; v < 2; ++v)
        cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));
    ProtocolConfig pc;
    pc.scheme = scheme;
    coord = std::make_unique<DvdcCoordinator>(sim, cluster, state, pc);
    recovery =
        std::make_unique<RecoveryManager>(sim, cluster, state, workloads);
    PlannerConfig planner;
    planner.group_size = 3;
    placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster), cluster,
                              scheme);
  }

  EpochStats epoch(checkpoint::Epoch e) {
    EpochStats stats;
    coord->run_epoch(*placed, e, [&](const EpochStats& s) { stats = s; });
    sim.run();
    return stats;
  }

  RecoveryStats double_failure() {
    // Kill two nodes hosting members of the same group.
    const auto& group = placed->plan.groups[0];
    const auto n0 = *cluster.locate(group.members[0]);
    const auto n1 = *cluster.locate(group.members[1]);
    std::vector<vm::VmId> lost = cluster.node(n0).hypervisor().vm_ids();
    const auto more = cluster.node(n1).hypervisor().vm_ids();
    lost.insert(lost.end(), more.begin(), more.end());
    cluster.kill_node(n0);
    cluster.kill_node(n1);
    state.drop_node(n0);
    state.drop_node(n1);
    RecoveryStats stats;
    recovery->recover(*placed, lost,
                      [&](const RecoveryStats& s) { stats = s; });
    sim.run();
    return stats;
  }
};

}  // namespace

int main() {
  bench::banner("ABL-RDP  RAID-5 single parity vs. RDP double parity",
                "6 nodes x 2 VMs (256 KiB images), groups of 3");

  std::printf("%-10s %12s %12s %14s %12s\n", "scheme", "epoch1 wire",
              "epoch2 wire", "epoch latency", "parity mem");
  struct Probe {
    ParityScheme scheme;
    const char* name;
  } probes[] = {{ParityScheme::Raid5, "RAID-5"}, {ParityScheme::Rdp, "RDP"}};

  for (const auto& probe : probes) {
    Rig rig(probe.scheme);
    const auto s1 = rig.epoch(1);
    rig.cluster.advance_workloads(1.0);
    const auto s2 = rig.epoch(2);
    Bytes parity_mem = 0;
    for (const auto& group : rig.placed->plan.groups) {
      const auto* record = rig.state.parity(group.id);
      for (const auto& b : record->blocks) parity_mem += b.size();
    }
    std::printf("%-10s %12s %12s %14s %12s\n", probe.name,
                bench::fmt_bytes(static_cast<double>(s1.bytes_shipped))
                    .c_str(),
                bench::fmt_bytes(static_cast<double>(s2.bytes_shipped))
                    .c_str(),
                bench::fmt_time(s2.latency).c_str(),
                bench::fmt_bytes(static_cast<double>(parity_mem)).c_str());
  }

  std::printf("\ncorrelated double-node failure inside one group:\n");
  for (const auto& probe : probes) {
    Rig rig(probe.scheme);
    rig.epoch(1);
    const auto stats = rig.double_failure();
    std::printf("  %-8s -> %s%s\n", probe.name,
                stats.success ? "RECOVERED in " : "DATA LOSS (",
                stats.success
                    ? bench::fmt_time(stats.duration).c_str()
                    : (stats.reason + ")").c_str());
  }

  std::printf("\nRDP doubles the exchange traffic and parity memory and "
              "gives up delta updates, but survives the double failure "
              "that kills RAID-5 DVDC.\n");
  return 0;
}
