// CLAIM-NET — Section V-B: "the network step in the baseline is
// bottlenecked by a single NAS, whereas diskless checkpointing distributes
// the traffic evenly among nodes" — so the diskless network step speeds up
// roughly linearly with the node count.
//
// Measured on the flow-level fabric: per-node checkpoint data is fixed and
// the cluster grows. The NAS fan-in time grows ~linearly with total data;
// the peer-exchange time stays flat (full-duplex NICs, symmetric send and
// receive). Both are measured, not computed — contention comes out of the
// max-min fair allocator.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/baseline.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

ClusterConfig shape(std::uint32_t nodes) {
  ClusterConfig cc;
  cc.nodes = nodes;
  cc.vms_per_node = 3;
  cc.page_size = kib(4);
  cc.pages_per_vm = 64;  // 256 KiB per VM, 768 KiB per node
  cc.write_rate = 0.0;
  // Slow NICs so the network phase dominates measurement noise.
  cc.node_spec.nic_rate = mib_per_s(10);
  return cc;
}

SimTime dvdc_epoch_latency(std::uint32_t nodes) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(5));
  const ClusterConfig cc = shape(nodes);
  auto workloads = make_workload_factory(cc);
  for (std::uint32_t n = 0; n < nodes; ++n)
    cluster.add_node(cc.node_spec);
  for (std::uint32_t n = 0; n < nodes; ++n)
    for (std::uint32_t v = 0; v < cc.vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));
  DvdcState state;
  ProtocolConfig pc;
  pc.base_overhead = 0.0;
  pc.commit_latency = 0.0;
  DvdcCoordinator coord(sim, cluster, state, pc);
  PlannerConfig planner;
  // Fixed stripe width (per-node load constant); shrink for tiny clusters.
  planner.group_size = std::min(3u, nodes - 1);
  auto placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster),
                                 cluster, ParityScheme::Raid5);
  SimTime latency = 0;
  coord.run_epoch(placed, 1,
                  [&](const EpochStats& s) { latency = s.latency; });
  sim.run();
  return latency;
}

SimTime diskfull_epoch_latency(std::uint32_t nodes) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(6));
  const ClusterConfig cc = shape(nodes);
  auto workloads = make_workload_factory(cc);
  for (std::uint32_t n = 0; n < nodes; ++n)
    cluster.add_node(cc.node_spec);
  for (std::uint32_t n = 0; n < nodes; ++n)
    for (std::uint32_t v = 0; v < cc.vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));
  DiskFullConfig df;
  df.nas.frontend_rate = mib_per_s(10);  // same speed as one NIC
  df.nas.array = storage::DiskSpec{mib_per_s(40), mib_per_s(50), 0.0};
  df.base_overhead = 0.0;
  df.commit_latency = 0.0;
  DiskFullBackend backend(sim, cluster, workloads, df);
  SimTime latency = 0;
  backend.checkpoint(1, [&](const EpochStats& s) { latency = s.latency; });
  sim.run();
  return latency;
}

}  // namespace

int main() {
  bench::banner("CLAIM-NET  NAS fan-in vs. distributed peer exchange",
                "fixed 768 KiB checkpoint data per node; 10 MiB/s links");
  std::printf("%6s  %16s  %16s  %10s\n", "nodes", "NAS checkpoint",
              "DVDC checkpoint", "NAS/DVDC");
  SimTime base_dvdc = 0;
  for (std::uint32_t n : {2u, 4u, 8u, 12u, 16u}) {
    const SimTime nas = diskfull_epoch_latency(n);
    const SimTime dvdc = dvdc_epoch_latency(n);
    if (n == 2) base_dvdc = dvdc;
    std::printf("%6u  %16s  %16s  %9.1fx\n", n,
                bench::fmt_time(nas).c_str(), bench::fmt_time(dvdc).c_str(),
                nas / dvdc);
  }
  std::printf("\nDVDC's exchange stays ~flat as nodes are added (%s at 2 "
              "nodes), while the NAS path grows with the aggregate data — "
              "the paper's ~linear network speedup.\n",
              bench::fmt_time(base_dvdc).c_str());
  return 0;
}
