// EQ13 — corroborates the Section V equations against Monte-Carlo
// simulation of the renewal process (the paper mentions "models to
// corroborate our equations" without showing them; this is that run).
//
// Also documents the printed-formula typos: Eq. (1) as printed equals the
// corrected closed form (the typos cancel); Eq. (3) as printed does not.

#include <cstdio>

#include "bench_util.hpp"
#include "model/analytic.hpp"
#include "model/montecarlo.hpp"

using namespace vdc;

int main() {
  bench::banner("EQ13  analytic model vs. Monte-Carlo",
                "10k trials per cell; error = (MC - analytic)/analytic");

  std::printf("--- Eq. (1): no checkpointing ------------------------------\n");
  std::printf("%10s %10s  %14s  %14s  %8s\n", "MTBF", "T", "analytic",
              "monte-carlo", "err");
  Rng rng(7);
  for (double mtbf : {hours(1), hours(3), hours(6)}) {
    for (double t : {hours(1), hours(4)}) {
      const double lambda = 1.0 / mtbf;
      const double analytic = model::expected_time_no_checkpoint(lambda, t);
      model::McConfig mc;
      mc.lambda = lambda;
      mc.total_work = t;
      mc.interval = 0.0;
      mc.trials = 10000;
      const auto stats = model::simulate_completion_times(mc, rng.fork());
      std::printf("%10s %10s  %14s  %14s  %+7.2f%%\n",
                  bench::fmt_time(mtbf).c_str(), bench::fmt_time(t).c_str(),
                  bench::fmt_time(analytic).c_str(),
                  bench::fmt_time(stats.mean()).c_str(),
                  (stats.mean() / analytic - 1.0) * 100.0);
    }
  }

  std::printf("\n--- Eq. (3) + overhead: checkpointing every N --------------\n");
  std::printf("%10s %10s %8s %8s  %14s  %14s  %8s\n", "MTBF", "N", "Tov",
              "Tr", "analytic", "monte-carlo", "err");
  for (double mtbf : {hours(1), hours(3)}) {
    for (double n : {minutes(10), hours(1)}) {
      for (double tov : {5.0, 60.0}) {
        const double lambda = 1.0 / mtbf;
        const double tr = 90.0;
        const double t = days(1);
        const double analytic = model::expected_time_checkpoint_overhead(
            lambda, t, n, tov, tr);
        model::McConfig mc;
        mc.lambda = lambda;
        mc.total_work = t;
        mc.interval = n;
        mc.overhead = tov;
        mc.repair = tr;
        mc.trials = 10000;
        const auto stats = model::simulate_completion_times(mc, rng.fork());
        std::printf("%10s %10s %8s %8s  %14s  %14s  %+7.2f%%\n",
                    bench::fmt_time(mtbf).c_str(),
                    bench::fmt_time(n).c_str(), bench::fmt_time(tov).c_str(),
                    bench::fmt_time(tr).c_str(),
                    bench::fmt_time(analytic).c_str(),
                    bench::fmt_time(stats.mean()).c_str(),
                    (stats.mean() / analytic - 1.0) * 100.0);
      }
    }
  }

  std::printf("\n--- printed-formula bookkeeping -----------------------------\n");
  const double lambda = 9.26e-5, t = days(2), n = hours(1);
  std::printf("Eq.(1) printed vs corrected  : %.6e vs %.6e (typos cancel)\n",
              model::paper_literal::eq1(lambda, t),
              model::expected_time_no_checkpoint(lambda, t));
  std::printf("Eq.(3) printed vs corrected  : %.6e vs %.6e "
              "(printed uses e^{lambda*T}, not e^{lambda*N})\n",
              model::paper_literal::eq3(lambda, t, n),
              model::expected_time_checkpoint(lambda, t, n));
  return 0;
}
