// ABL-ADAPT — adaptive vs. fixed checkpoint intervals (paper §II-B.1).
//
// Synchronous (non-COW) DVDC epochs cost what the dirty set costs, so a
// bursty guest makes the per-epoch overhead swing. A fixed interval tuned
// for the average pays too much in the hot phase and checkpoints too
// rarely in the cold phase; the adaptive policy re-derives Young's rule
// from an online overhead estimate. Identical failure seeds throughout.

#include <cstdio>

#include "bench_util.hpp"
#include "core/adaptive.hpp"
#include "core/baseline.hpp"
#include "core/runtime.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

// A bursty cluster: phased guests alternating heavy and idle writing.
JobRunner::BackendFactory bursty_backend(ClusterConfig cc,
                                         ProtocolConfig pc) {
  return [cc, pc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
                  Rng&) -> std::unique_ptr<CheckpointBackend> {
    WorkloadFactory workloads = [](vm::VmId) -> std::unique_ptr<vm::Workload> {
      return std::make_unique<vm::PhasedWorkload>(4000.0, 20.0,
                                                  /*phase=*/minutes(4));
    };
    return std::make_unique<DvdcBackend>(sim, cluster, pc, RecoveryConfig{},
                                         std::move(workloads));
  };
}

RunResult run(std::shared_ptr<IntervalPolicy> policy, SimTime fixed) {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.page_size = kib(4);
  cc.pages_per_vm = 256;
  cc.write_rate = 0.0;  // workloads injected by the backend factory

  ProtocolConfig pc;
  pc.copy_on_write = false;      // overhead tracks the dirty set
  pc.snapshot_rate = mib_per_s(200);
  pc.incremental = true;

  JobConfig job;
  job.total_work = hours(2);
  job.interval = fixed;
  job.interval_policy = std::move(policy);
  job.lambda = 1.0 / minutes(40);
  job.seed = 4242;

  JobRunner runner(job, cc, bursty_backend(cc, pc));
  return runner.run();
}

}  // namespace

int main() {
  bench::banner("ABL-ADAPT  fixed vs. adaptive checkpoint intervals",
                "bursty guests (4 min hot / 4 min idle), sync capture, "
                "MTBF 40 min");
  std::printf("%-22s %8s %8s %12s %12s %10s\n", "policy", "ratio",
              "epochs", "overhead", "lost work", "recovery");

  struct Row {
    const char* name;
    std::shared_ptr<IntervalPolicy> policy;
    SimTime fixed;
  };
  AdaptiveConfig ac;
  ac.lambda = 1.0 / minutes(40);
  ac.initial = minutes(2);
  ac.min_interval = seconds(15);
  ac.max_interval = minutes(30);

  Row rows[] = {
      {"fixed 1 min", nullptr, minutes(1)},
      {"fixed 5 min", nullptr, minutes(5)},
      {"fixed 20 min", nullptr, minutes(20)},
      {"adaptive (Young EWMA)",
       std::make_shared<AdaptiveIntervalPolicy>(ac), 0.0},
  };
  for (auto& row : rows) {
    const RunResult r = run(row.policy, row.fixed);
    if (!r.finished) {
      std::printf("%-22s did not finish\n", row.name);
      continue;
    }
    std::printf("%-22s %8.4f %8u %12s %12s %10s\n", row.name, r.time_ratio,
                r.epochs, bench::fmt_time(r.total_overhead).c_str(),
                bench::fmt_time(r.lost_work).c_str(),
                bench::fmt_time(r.total_recovery).c_str());
  }
  std::printf("\nThe adaptive policy rides the burst cycle: frequent cheap "
              "checkpoints in idle phases, sparse ones while the dirty set "
              "is hot — matching or beating the best fixed interval "
              "without tuning.\n");
  return 0;
}
