// ABL-WEIB — how fragile is the Section V analysis to its Poisson
// assumption? The paper itself flags the caveat ("cf. the bathtub curve
// model for failures"); here we re-run the Fig. 5 scenario's diskless and
// disk-full operating points under Weibull failure processes with the
// SAME MTBF but different hazard shapes:
//
//   shape 0.6  — infant mortality (decreasing hazard, heavy-tailed gaps)
//   shape 1.0  — exponential (the model's assumption)
//   shape 2.0  — wear-out (increasing hazard, regular gaps)
//
// The closed form only exists for shape 1; everything else is the renewal
// Monte-Carlo over the same segment structure.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "failure/distributions.hpp"
#include "model/analytic.hpp"
#include "model/montecarlo.hpp"
#include "model/overhead.hpp"

using namespace vdc;

namespace {

double ratio_under(failure::TtfDistribution& ttf, SimTime total_work,
                   SimTime interval, SimTime overhead, SimTime repair,
                   Rng rng) {
  model::McConfig mc;
  mc.total_work = total_work;
  mc.interval = interval;
  mc.overhead = overhead;
  mc.repair = repair;
  mc.trials = 2000;
  const auto stats = model::simulate_completion_times_ttf(mc, ttf, rng);
  return stats.mean() / total_work;
}

}  // namespace

int main() {
  const model::Fig5Scenario fig5 = model::fig5_scenario();
  const double mtbf = 1.0 / fig5.lambda;
  const auto df = model::diskfull_costs(fig5.shape, fig5.hw);
  const auto dl = model::diskless_costs(fig5.shape, fig5.hw, true);
  const auto opt_df = model::optimal_interval(fig5.lambda, fig5.total_work,
                                              df.overhead, df.repair);
  const auto opt_dl = model::optimal_interval(fig5.lambda, fig5.total_work,
                                              dl.overhead, dl.repair);

  bench::banner("ABL-WEIB  Poisson-assumption sensitivity (paper's caveat)",
                "Fig. 5 scenario at each scheme's Poisson-optimal interval; "
                "equal MTBF, different hazard shapes");

  std::printf("%22s  %14s  %14s  %10s\n", "failure process",
              "diskfull E/T", "diskless E/T", "reduction");
  Rng rng(31337);
  for (double shape : {0.6, 1.0, 2.0}) {
    const double scale = mtbf / std::tgamma(1.0 + 1.0 / shape);
    double r_df, r_dl;
    if (shape == 1.0) {
      r_df = opt_df.ratio;
      r_dl = opt_dl.ratio;
    } else {
      failure::WeibullTtf ttf_df(shape, scale);
      failure::WeibullTtf ttf_dl(shape, scale);
      r_df = ratio_under(ttf_df, fig5.total_work, opt_df.interval,
                         df.overhead, df.repair, rng.fork());
      r_dl = ratio_under(ttf_dl, fig5.total_work, opt_dl.interval,
                         dl.overhead, dl.repair, rng.fork());
    }
    char label[64];
    std::snprintf(label, sizeof label, "Weibull k=%.1f%s", shape,
                  shape == 1.0 ? " (=Poisson)" : "");
    std::printf("%22s  %14.4f  %14.4f  %9.1f%%\n", label, r_df, r_dl,
                (1.0 - r_dl / r_df) * 100.0);
  }

  std::printf("\nThe diskless advantage survives every hazard shape; the\n"
              "absolute ratios shift (heavy-tailed gaps are kinder, wear-out\n"
              "is harsher on the slow disk-full checkpoints), so intervals\n"
              "tuned by the Poisson formula are near- but not exactly\n"
              "optimal off-assumption — the caveat quantified.\n");
  return 0;
}
