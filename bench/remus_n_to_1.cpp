// ABL-N1 — Section VI: "the authors suggest that Remus can run in an
// N-to-1 fashion for active and backup hosts [...] Virtual diskless
// checkpointing has no such restriction and can accommodate clusters of
// varying sizes."
//
// We protect N active hosts' VMs with ONE Remus backup host and watch the
// backup's NIC become the fan-in bottleneck: committed epoch rate drops
// and the recovery point (staleness) grows with N. DVDC at the same scale
// spreads exactly the same protection traffic across all nodes, so its
// epoch latency stays flat.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/runtime.hpp"
#include "migration/remus.hpp"

using namespace vdc;

namespace {

struct RemusProbe {
  double epochs_per_sec = 0;
  SimTime worst_staleness = 0;
  Bytes backup_bytes = 0;
};

RemusProbe run_remus(int n_primaries) {
  simkit::Simulator sim;
  net::Fabric fabric(sim, 50e-6);
  std::vector<net::HostId> hosts;
  std::vector<std::unique_ptr<vm::Hypervisor>> hypervisors;
  for (int i = 0; i < n_primaries; ++i) {
    hosts.push_back(fabric.add_host(mib_per_s(100)));
    hypervisors.push_back(std::make_unique<vm::Hypervisor>(Rng(100 + i)));
  }
  const auto backup = fabric.add_host(mib_per_s(100), "backup");

  migration::RemusConfig config;
  config.epoch_interval = 0.025;  // 40/s target
  config.compress = false;        // classic Remus ships raw dirty pages
  std::vector<std::unique_ptr<migration::RemusReplicator>> replicators;
  for (int i = 0; i < n_primaries; ++i) {
    hypervisors[i]->create_vm(
        static_cast<vm::VmId>(i + 1), "vm", kib(4), 1024,
        std::make_unique<vm::UniformWorkload>(4000.0));
    replicators.push_back(std::make_unique<migration::RemusReplicator>(
        sim, fabric, *hypervisors[i], hosts[i], backup,
        static_cast<vm::VmId>(i + 1), config));
    replicators.back()->start();
  }
  sim.run_until(10.0);

  RemusProbe probe;
  std::uint64_t committed = 0;
  for (auto& r : replicators) {
    committed += r->stats().epochs_committed;
    probe.backup_bytes += r->stats().bytes_shipped;
    probe.worst_staleness = std::max(probe.worst_staleness, r->staleness());
    r->stop();
  }
  probe.epochs_per_sec =
      static_cast<double>(committed) / (10.0 * n_primaries);
  return probe;
}

SimTime dvdc_epoch_latency(int nodes) {
  simkit::Simulator sim;
  cluster::ClusterManager cluster(sim, Rng(7));
  core::ClusterConfig cc;
  cc.page_size = kib(4);
  cc.pages_per_vm = 1024;
  cc.write_rate = 4000.0;
  cc.node_spec.nic_rate = mib_per_s(100);
  auto workloads = core::make_workload_factory(cc);
  for (int n = 0; n < nodes; ++n) cluster.add_node(cc.node_spec);
  for (int n = 0; n < nodes; ++n)
    cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));
  core::DvdcState state;
  core::DvdcCoordinator coord(sim, cluster, state);
  core::PlannerConfig planner;
  planner.group_size = std::min(3, nodes - 1);
  auto placed = core::PlacedPlan::make(
      core::GroupPlanner(planner).plan(cluster), cluster);
  // Steady state: second (incremental) epoch after some dirtying.
  coord.run_epoch(placed, 1, [](const core::EpochStats&) {});
  sim.run();
  cluster.advance_workloads(1.0);
  SimTime latency = 0;
  coord.run_epoch(placed, 2,
                  [&](const core::EpochStats& s) { latency = s.latency; });
  sim.run();
  return latency;
}

}  // namespace

int main() {
  bench::banner(
      "ABL-N1  Remus N-to-1 backup fan-in vs. DVDC's flat exchange",
      "4 MiB guests dirtying hard, raw dirty pages; 100 MiB/s NICs; 10 s");
  std::printf("%4s  %18s %14s %12s  %16s\n", "N", "Remus epochs/s/VM",
              "staleness", "backup RX", "DVDC epoch lat");
  for (int n : {1, 2, 4, 8, 12}) {
    const RemusProbe remus = run_remus(n);
    const SimTime dvdc = dvdc_epoch_latency(std::max(n, 2) + 1);
    std::printf("%4d  %18.1f %14s %12s  %16s\n", n, remus.epochs_per_sec,
                bench::fmt_time(remus.worst_staleness).c_str(),
                bench::fmt_bytes(static_cast<double>(remus.backup_bytes))
                    .c_str(),
                bench::fmt_time(dvdc).c_str());
  }
  std::printf("\nOne backup host serializes N replication streams: the\n"
              "checkpoint rate collapses and the recovery point ages as N\n"
              "grows. DVDC has no distinguished backup — its exchange cost\n"
              "stays flat at any cluster size (the Section VI contrast).\n");
  return 0;
}
