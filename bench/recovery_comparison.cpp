// CLAIM-REC — Section VI's DVDC-vs-Remus trade-off, plus the disk-full
// baseline:
//
//   Remus     — resumes almost instantly on the standby, loses only the
//               unacknowledged speculation window, but needs a dedicated
//               backup host per protected VM.
//   DVDC      — must detect, reconstruct from parity, roll the whole
//               cluster back to the committed cut, then resume; no standby
//               capacity required.
//   disk-full — detect, fetch the lost image back off the NAS, roll back.
//
// Reported per scheme: time until execution resumes, work lost to the
// rollback, and the redundant capacity the scheme reserves.

#include <cstdio>

#include "bench_util.hpp"
#include "core/baseline.hpp"
#include "core/runtime.hpp"
#include "migration/remus.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

constexpr SimTime kDetection = 0.5;
constexpr SimTime kCheckpointAge = 60.0;  // failure 60s after the last cut

ClusterConfig shape() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.page_size = kib(4);
  cc.pages_per_vm = 256;
  cc.write_rate = 100.0;
  cc.node_spec.nic_rate = mib_per_s(100);
  return cc;
}

struct Row {
  const char* scheme;
  SimTime resume_after;  // failure -> compute resumes
  SimTime lost_work;
  const char* reserved;
};

template <typename MakeBackend>
Row run_backend(const char* name, const char* reserved,
                const bench::TraceSpec& trace, const char* trace_label,
                MakeBackend make_backend) {
  simkit::Simulator sim;
  trace.attach(sim, trace_label);
  cluster::ClusterManager cluster(sim, Rng(11));
  const ClusterConfig cc = shape();
  auto workloads = make_workload_factory(cc);
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    cluster.add_node(cc.node_spec);
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    for (std::uint32_t v = 0; v < cc.vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

  auto backend = make_backend(sim, cluster, workloads);
  for (cluster::NodeId nid : cluster.alive_nodes())
    cluster.node(nid).hypervisor().pause_all();
  backend->checkpoint(1, [](const EpochStats&) {});
  sim.run();

  // Compute for kCheckpointAge, then node 1 dies.
  cluster.advance_workloads(kCheckpointAge);
  sim.run_until(sim.now() + kCheckpointAge);
  const SimTime fail_time = sim.now();
  const auto lost = cluster.node(1).hypervisor().vm_ids();
  cluster.kill_node(1);
  backend->on_node_failure(1);

  SimTime resumed_at = -1;
  sim.after(kDetection, [&] {
    backend->handle_failure(lost, [&](const RecoveryStats& rs) {
      (void)rs;
      resumed_at = sim.now();
    });
  });
  sim.run();
  if (trace.enabled()) sim.telemetry().flush();

  Row row;
  row.scheme = name;
  row.resume_after = resumed_at - fail_time;
  row.lost_work = kCheckpointAge;  // rolled back to the cut
  row.reserved = reserved;
  return row;
}

Row run_remus(const bench::TraceSpec& trace) {
  simkit::Simulator sim;
  trace.attach(sim, "remus");
  net::Fabric fabric(sim, 50e-6);
  const auto primary_host = fabric.add_host(mib_per_s(100));
  const auto backup_host = fabric.add_host(mib_per_s(100));
  vm::Hypervisor primary(Rng(21));
  primary.create_vm(1, "vm", kib(4), 256,
                    std::make_unique<vm::UniformWorkload>(100.0));

  migration::RemusConfig config;
  config.epoch_interval = 0.025;
  migration::RemusReplicator remus(sim, fabric, primary, primary_host,
                                   backup_host, 1, config);
  remus.start();
  sim.run_until(kCheckpointAge);
  const auto failover = remus.failover();
  if (trace.enabled()) sim.telemetry().flush();

  Row row;
  row.scheme = "Remus (per-VM standby)";
  // Standby promotes as soon as the failure is detected.
  row.resume_after = kDetection;
  row.lost_work = failover.lost_work;
  row.reserved = "1 standby host per host";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto trace = bench::TraceSpec::from_args(argc, argv);
  bench::banner("CLAIM-REC  failure handling: DVDC vs Remus vs disk-full",
                "failure strikes 60 s after the last checkpoint cut");

  DiskFullConfig df;
  df.nas.frontend_rate = mib_per_s(100);
  df.nas.array =
      storage::DiskSpec{mib_per_s(60), mib_per_s(80), milliseconds(5)};

  const Row rows[] = {
      run_remus(trace),
      run_backend("DVDC (RAID-5 parity)", "1/n memory for parity", trace,
                  "dvdc",
                  [&](auto& sim, auto& cluster, auto& workloads) {
                    return std::make_unique<DvdcBackend>(
                        sim, cluster, ProtocolConfig{}, RecoveryConfig{},
                        workloads);
                  }),
      run_backend("disk-full (NAS)", "NAS capacity", trace, "diskfull",
                  [&](auto& sim, auto& cluster, auto& workloads) {
                    return std::make_unique<DiskFullBackend>(sim, cluster,
                                                             workloads, df);
                  }),
  };

  std::printf("%-24s %16s %14s  %s\n", "scheme", "resume after",
              "lost work", "reserved capacity");
  for (const auto& row : rows)
    std::printf("%-24s %16s %14s  %s\n", row.scheme,
                bench::fmt_time(row.resume_after).c_str(),
                bench::fmt_time(row.lost_work).c_str(), row.reserved);

  std::printf("\nRemus resumes immediately and loses milliseconds, but "
              "doubles the hardware; DVDC pays seconds of reconstruction "
              "and rolls the cluster back to the last cut, for ~1/n memory "
              "overhead and zero idle nodes (the paper's trade).\n");
  return 0;
}
