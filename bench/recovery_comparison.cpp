// CLAIM-REC — Section VI's DVDC-vs-Remus trade-off, plus the disk-full
// baseline:
//
//   Remus     — resumes almost instantly on the standby, loses only the
//               unacknowledged speculation window, but needs a dedicated
//               backup host per protected VM.
//   DVDC      — must detect, reconstruct from parity, roll the whole
//               cluster back to the committed cut, then resume; no standby
//               capacity required.
//   disk-full — detect, fetch the lost image back off the NAS, roll back.
//
// Reported per scheme: time until execution resumes, work lost to the
// rollback, and the redundant capacity the scheme reserves.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/baseline.hpp"
#include "core/runtime.hpp"
#include "migration/remus.hpp"

using namespace vdc;
using namespace vdc::core;

namespace {

constexpr SimTime kDetection = 0.5;
constexpr SimTime kCheckpointAge = 60.0;  // failure 60s after the last cut

ClusterConfig shape() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.page_size = kib(4);
  cc.pages_per_vm = 256;
  cc.write_rate = 100.0;
  cc.node_spec.nic_rate = mib_per_s(100);
  return cc;
}

struct Row {
  const char* scheme;
  SimTime resume_after;  // failure -> compute resumes
  SimTime lost_work;
  const char* reserved;
};

template <typename MakeBackend>
Row run_backend(const char* name, const char* reserved,
                const bench::TraceSpec& trace, const char* trace_label,
                MakeBackend make_backend) {
  simkit::Simulator sim;
  trace.attach(sim, trace_label);
  cluster::ClusterManager cluster(sim, Rng(11));
  const ClusterConfig cc = shape();
  auto workloads = make_workload_factory(cc);
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    cluster.add_node(cc.node_spec);
  for (std::uint32_t n = 0; n < cc.nodes; ++n)
    for (std::uint32_t v = 0; v < cc.vms_per_node; ++v)
      cluster.boot_vm(n, cc.page_size, cc.pages_per_vm, workloads(0));

  auto backend = make_backend(sim, cluster, workloads);
  for (cluster::NodeId nid : cluster.alive_nodes())
    cluster.node(nid).hypervisor().pause_all();
  backend->checkpoint(1, [](const EpochStats&) {});
  sim.run();

  // Compute for kCheckpointAge, then node 1 dies.
  cluster.advance_workloads(kCheckpointAge);
  sim.run_until(sim.now() + kCheckpointAge);
  const SimTime fail_time = sim.now();
  const auto lost = cluster.node(1).hypervisor().vm_ids();
  cluster.kill_node(1);
  backend->on_node_failure(1);

  SimTime resumed_at = -1;
  sim.after(kDetection, [&] {
    backend->handle_failure(lost, [&](const RecoveryStats& rs) {
      (void)rs;
      resumed_at = sim.now();
    });
  });
  sim.run();
  if (trace.enabled()) sim.telemetry().flush();

  Row row;
  row.scheme = name;
  row.resume_after = resumed_at - fail_time;
  row.lost_work = kCheckpointAge;  // rolled back to the cut
  row.reserved = reserved;
  return row;
}

Row run_remus(const bench::TraceSpec& trace) {
  simkit::Simulator sim;
  trace.attach(sim, "remus");
  net::Fabric fabric(sim, 50e-6);
  const auto primary_host = fabric.add_host(mib_per_s(100));
  const auto backup_host = fabric.add_host(mib_per_s(100));
  vm::Hypervisor primary(Rng(21));
  primary.create_vm(1, "vm", kib(4), 256,
                    std::make_unique<vm::UniformWorkload>(100.0));

  migration::RemusConfig config;
  config.epoch_interval = 0.025;
  migration::RemusReplicator remus(sim, fabric, primary, primary_host,
                                   backup_host, 1, config);
  remus.start();
  sim.run_until(kCheckpointAge);
  const auto failover = remus.failover();
  if (trace.enabled()) sim.telemetry().flush();

  Row row;
  row.scheme = "Remus (per-VM standby)";
  // Standby promotes as soon as the failure is detected.
  row.resume_after = kDetection;
  row.lost_work = failover.lost_work;
  row.reserved = "1 standby host per host";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto trace = bench::TraceSpec::from_args(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  bench::banner("CLAIM-REC  failure handling: DVDC vs Remus vs disk-full",
                "failure strikes 60 s after the last checkpoint cut");

  DiskFullConfig df;
  df.nas.frontend_rate = mib_per_s(100);
  df.nas.array =
      storage::DiskSpec{mib_per_s(60), mib_per_s(80), milliseconds(5)};

  ProtocolConfig chunked_pc;
  chunked_pc.chunking.chunk_bytes = kib(64);
  chunked_pc.chunking.pipeline_depth = 4;
  RecoveryConfig chunked_rc;
  chunked_rc.chunking = chunked_pc.chunking;

  const Row rows[] = {
      run_remus(trace),
      run_backend("DVDC (RAID-5 parity)", "1/n memory for parity", trace,
                  "dvdc",
                  [&](auto& sim, auto& cluster, auto& workloads) {
                    return std::make_unique<DvdcBackend>(
                        sim, cluster, ProtocolConfig{}, RecoveryConfig{},
                        workloads);
                  }),
      run_backend("DVDC (chunked 64K/4)", "1/n memory for parity", trace,
                  "dvdc_chunked",
                  [&](auto& sim, auto& cluster, auto& workloads) {
                    return std::make_unique<DvdcBackend>(
                        sim, cluster, chunked_pc, chunked_rc, workloads);
                  }),
      run_backend("disk-full (NAS)", "NAS capacity", trace, "diskfull",
                  [&](auto& sim, auto& cluster, auto& workloads) {
                    return std::make_unique<DiskFullBackend>(sim, cluster,
                                                             workloads, df);
                  }),
  };

  std::printf("%-24s %16s %14s  %s\n", "scheme", "resume after",
              "lost work", "reserved capacity");
  for (const auto& row : rows)
    std::printf("%-24s %16s %14s  %s\n", row.scheme,
                bench::fmt_time(row.resume_after).c_str(),
                bench::fmt_time(row.lost_work).c_str(), row.reserved);

  const Row& dvdc_plain = rows[1];
  const Row& dvdc_chunked = rows[2];
  const SimTime saved = dvdc_plain.resume_after - dvdc_chunked.resume_after;
  std::printf("\nChunked pipelining overlaps decode and forwards with the "
              "reconstruction wire: makespan %s vs %s (%s saved).\n",
              bench::fmt_time(dvdc_chunked.resume_after).c_str(),
              bench::fmt_time(dvdc_plain.resume_after).c_str(),
              bench::fmt_time(saved).c_str());
  std::printf("\nRemus resumes immediately and loses milliseconds, but "
              "doubles the hardware; DVDC pays seconds of reconstruction "
              "and rolls the cluster back to the last cut, for ~1/n memory "
              "overhead and zero idle nodes (the paper's trade).\n");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"recovery_comparison\",\n");
    std::fprintf(out, "  \"rows\": [\n");
    const std::size_t n = sizeof(rows) / sizeof(rows[0]);
    for (std::size_t i = 0; i < n; ++i)
      std::fprintf(out,
                   "    {\"scheme\": \"%s\", \"resume_after_s\": %.9f, "
                   "\"lost_work_s\": %.9f}%s\n",
                   rows[i].scheme, rows[i].resume_after, rows[i].lost_work,
                   i + 1 < n ? "," : "");
    std::fprintf(out, "  ],\n  \"chunked_saved_s\": %.9f\n}\n", saved);
    std::fclose(out);
  }

  if (dvdc_chunked.resume_after >= dvdc_plain.resume_after) {
    std::fprintf(stderr,
                 "FAIL: chunked DVDC recovery makespan did not improve\n");
    return 1;
  }
  return 0;
}
